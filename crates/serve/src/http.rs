//! The HTTP/1.1 front end: router, worker-thread pool, rate limiting.
//!
//! Dependency-free by design — a std [`TcpListener`], an acceptor
//! thread, and a bounded pool of worker threads pulling accepted
//! connections off an `mpsc` queue. Workers speak just enough
//! HTTP/1.1 for the API: `GET` requests, keep-alive connections,
//! `Content-Length`-framed JSON responses. One worker owns one
//! connection until the peer closes it (or the server shuts down), so
//! the pool size bounds concurrent connections; size
//! [`ServeOptions::threads`] to the expected client count.
//!
//! Request handling is deliberately boring: parse the request line,
//! consult the token bucket, dispatch on the route table
//! ([`ROUTES`]), let the [`QueryIndex`] render the body. Every error
//! path returns the JSON error envelope documented in `API.md`
//! (`{"error": {"code", "status", "message"}}`). Per-request
//! telemetry — `serve.requests{route}`, `serve.responses{status}`,
//! and the `serve.latency_us{route}` histograms — goes through the
//! same [`TelemetrySink`] the simulation uses, and is reported by the
//! CLI when the daemon exits.

use crate::index::{QueryIndex, RANGE_PREFIX_LEN};
use pwnd_telemetry::json::Json;
use pwnd_telemetry::TelemetrySink;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One registered endpoint, as listed by `pwnd serve --print-routes`
/// and cross-checked against `API.md` in CI.
#[derive(Clone, Copy, Debug)]
pub struct Route {
    /// HTTP method (always `GET` in `/v1`).
    pub method: &'static str,
    /// Path pattern with `{placeholders}` for variable segments.
    pub pattern: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The `/v1` route table — the single source of truth for what the
/// router answers; `API.md` must document exactly these.
pub const ROUTES: [Route; 6] = [
    Route {
        method: "GET",
        pattern: "/v1/healthz",
        summary: "liveness plus store provenance",
    },
    Route {
        method: "GET",
        pattern: "/v1/stats",
        summary: "the shared §4.1 overview and attacker-class totals",
    },
    Route {
        method: "GET",
        pattern: "/v1/outlets",
        summary: "per-outlet aggregate table",
    },
    Route {
        method: "GET",
        pattern: "/v1/account/{id}/timeline",
        summary: "one account's event timeline",
    },
    Route {
        method: "GET",
        pattern: "/v1/account/{id}/accesses",
        summary: "one account's full access records",
    },
    Route {
        method: "GET",
        pattern: "/v1/range/{prefix}",
        summary: "k-anonymity credential-hash range query",
    },
];

/// Token-bucket rate-limit configuration (whole-server, not per
/// client: the daemon fronts one dataset, and the limit exists to
/// keep ingest-sized hardware responsive, not to meter tenants).
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Sustained requests per second the bucket refills at.
    pub per_sec: f64,
    /// Bucket capacity: how large a burst is absorbed before 429s.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `n` requests per second with a one-second burst.
    pub fn per_second(n: u32) -> RateLimit {
        RateLimit {
            per_sec: f64::from(n.max(1)),
            burst: f64::from(n.max(1)),
        }
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Shared token bucket. `try_take` either spends one token or reports
/// how many whole seconds until one is available (the `Retry-After`
/// value).
struct Limiter {
    cfg: RateLimit,
    bucket: Mutex<Bucket>,
}

impl Limiter {
    fn new(cfg: RateLimit) -> Limiter {
        Limiter {
            cfg,
            bucket: Mutex::new(Bucket {
                tokens: cfg.burst,
                last: Instant::now(),
            }),
        }
    }

    fn try_take(&self) -> Result<(), u64> {
        let mut b = self
            .bucket
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        let refill = now.duration_since(b.last).as_secs_f64() * self.cfg.per_sec;
        b.tokens = (b.tokens + refill).min(self.cfg.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            let wait = (1.0 - b.tokens) / self.cfg.per_sec;
            Err((wait.ceil() as u64).max(1))
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads; also the bound on concurrent connections.
    pub threads: usize,
    /// Optional whole-server token-bucket rate limit.
    pub rate: Option<RateLimit>,
    /// Sink for per-endpoint request counters and latency histograms;
    /// pass [`TelemetrySink::disabled`] to serve without instrumentation.
    pub telemetry: TelemetrySink,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 8,
            rate: None,
            telemetry: TelemetrySink::disabled(),
        }
    }
}

/// A running daemon: an acceptor thread plus [`ServeOptions::threads`]
/// workers. Dropping without [`Server::shutdown`] detaches the
/// threads; call `shutdown` for a graceful, joined exit.
///
/// ```
/// use pwnd_monitor::dataset::Dataset;
/// use pwnd_serve::http::{ServeOptions, Server};
/// use pwnd_serve::index::{QueryIndex, StoreMeta};
/// use std::sync::Arc;
///
/// let index = Arc::new(QueryIndex::from_dataset(&Dataset::default(), StoreMeta::default()));
/// let server = Server::bind("127.0.0.1:0", index, ServeOptions::default())?;
/// assert!(server.addr().port() != 0); // ephemeral port resolved
/// server.shutdown();
/// # std::io::Result::Ok(())
/// ```
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:8080"`, port `0` for ephemeral)
    /// and start accepting. Returns once the socket is listening — the
    /// daemon is immediately queryable on [`Server::addr`].
    pub fn bind(addr: &str, index: Arc<QueryIndex>, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let limiter = opts.rate.map(|cfg| Arc::new(Limiter::new(cfg)));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut handles = Vec::with_capacity(opts.threads + 1);
        for _ in 0..opts.threads.max(1) {
            let rx = Arc::clone(&rx);
            let index = Arc::clone(&index);
            let stop = Arc::clone(&shutdown);
            let limiter = limiter.clone();
            let sink = opts.telemetry.clone();
            handles.push(std::thread::spawn(move || loop {
                let next = {
                    let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    rx.recv_timeout(Duration::from_millis(100))
                };
                match next {
                    Ok(stream) => {
                        // Connection errors are the peer's problem;
                        // the worker moves on to the next one.
                        let _ = serve_connection(stream, &index, &stop, limiter.as_deref(), &sink);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }));
        }

        let stop = Arc::clone(&shutdown);
        handles.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    return; // drops tx; workers drain and exit
                }
                if let Ok(s) = stream {
                    if tx.send(s).is_err() {
                        return;
                    }
                }
            }
        }));

        Ok(Server {
            addr: local,
            shutdown,
            handles,
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let in-flight requests
    /// finish, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serve one connection until the peer closes, an error occurs, or
/// shutdown is requested. Read timeouts keep the keep-alive loop
/// responsive to shutdown without busy-waiting.
fn serve_connection(
    stream: TcpStream,
    index: &QueryIndex,
    stop: &AtomicBool,
    limiter: Option<&Limiter>,
    sink: &TelemetrySink,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    loop {
        let mut request_line = String::new();
        // Retry partial reads across timeouts: `read_line` keeps the
        // bytes it already appended, so the line assembles across
        // timeout boundaries.
        loop {
            match reader.read_line(&mut request_line) {
                Ok(0) => return Ok(()), // peer closed
                Ok(_) if request_line.ends_with('\n') => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // Drain headers; we only need Connection.
        let mut keep_alive = true;
        loop {
            let mut header = String::new();
            match reader.read_line(&mut header) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    let h = header.trim();
                    if h.is_empty() {
                        break;
                    }
                    if let Some(v) = h
                        .strip_prefix("Connection:")
                        .or(h.strip_prefix("connection:"))
                    {
                        keep_alive = !v.trim().eq_ignore_ascii_case("close");
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }

        let started = Instant::now();
        let mut parts = request_line.split_whitespace();
        let (method, path) = match (parts.next(), parts.next()) {
            (Some(m), Some(p)) => (m, p),
            _ => {
                let body = error_body(400, "bad_request", "malformed request line");
                write_response(&mut out, 400, "Bad Request", &body, &[], false)?;
                return Ok(());
            }
        };

        let (status, label, body, extra): (u16, &str, String, Vec<(&str, String)>) =
            if method != "GET" {
                (
                    405,
                    "method_not_allowed",
                    error_body(405, "method_not_allowed", "only GET is supported"),
                    vec![("Allow", "GET".to_string())],
                )
            } else if let Some(retry) = limiter.map(Limiter::try_take).and_then(Result::err) {
                (
                    429,
                    "rate_limited",
                    error_body(429, "rate_limited", "rate limit exceeded; slow down"),
                    vec![("Retry-After", retry.to_string())],
                )
            } else {
                let (status, label, body) = route(index, path);
                (status, label, body, Vec::new())
            };

        sink.count_labeled("serve.requests", label);
        sink.count_labeled("serve.responses", status_label(status));
        sink.observe_labeled(
            "serve.latency_us",
            label,
            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        );

        write_response(&mut out, status, reason(status), &body, &extra, keep_alive)?;
        if !keep_alive || stop.load(Ordering::Relaxed) {
            return Ok(());
        }
    }
}

/// Dispatch a GET path: `(status, telemetry label, body)`. The label
/// is the matched route pattern, so per-endpoint series aggregate
/// across concrete ids.
fn route(index: &QueryIndex, path: &str) -> (u16, &'static str, String) {
    // Query strings carry no meaning in /v1; ignore them.
    let path = path.split('?').next().unwrap_or(path);
    let segs: Vec<&str> = path.trim_matches('/').split('/').collect();
    match segs.as_slice() {
        ["v1", "healthz"] => (200, "/v1/healthz", index.healthz_json()),
        ["v1", "stats"] => (200, "/v1/stats", index.stats_json()),
        ["v1", "outlets"] => (200, "/v1/outlets", index.outlets_json()),
        ["v1", "account", id, tail @ ("timeline" | "accesses")] => {
            let pattern = if *tail == "timeline" {
                "/v1/account/{id}/timeline"
            } else {
                "/v1/account/{id}/accesses"
            };
            match id.parse::<u32>() {
                Err(_) => (
                    400,
                    pattern,
                    error_body(400, "invalid_account", "account id must be a decimal u32"),
                ),
                Ok(id) => {
                    let body = if *tail == "timeline" {
                        index.timeline_json(id)
                    } else {
                        index.accesses_json(id)
                    };
                    match body {
                        Some(body) => (200, pattern, body),
                        None => (
                            404,
                            pattern,
                            error_body(404, "unknown_account", "no such account in this store"),
                        ),
                    }
                }
            }
        }
        ["v1", "range", prefix] => {
            let valid = prefix.len() == RANGE_PREFIX_LEN
                && prefix
                    .chars()
                    .all(|c| c.is_ascii_digit() || c.is_ascii_uppercase() && c.is_ascii_hexdigit());
            if valid {
                (200, "/v1/range/{prefix}", index.range_json(prefix))
            } else {
                (
                    400,
                    "/v1/range/{prefix}",
                    error_body(
                        400,
                        "invalid_prefix",
                        "range prefix must be 5 uppercase hex characters",
                    ),
                )
            }
        }
        _ => (
            404,
            "unmatched",
            error_body(404, "not_found", "no such endpoint; see API.md"),
        ),
    }
}

/// The JSON error envelope every non-2xx response carries.
fn error_body(code: u16, status: &str, message: &str) -> String {
    let mut text = Json::Obj(vec![(
        "error".to_string(),
        Json::Obj(vec![
            ("code".to_string(), Json::U(u64::from(code))),
            ("status".to_string(), Json::Str(status.to_string())),
            ("message".to_string(), Json::Str(message.to_string())),
        ]),
    )])
    .pretty();
    text.push('\n');
    text
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Stable status label for the `serve.responses` counter.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        429 => "429",
        _ => "5xx",
    }
}

fn write_response(
    out: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    extra: &[(&str, String)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    out.write_all(head.as_bytes())?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_monitor::dataset::Dataset;

    fn empty_index() -> QueryIndex {
        QueryIndex::from_dataset(&Dataset::default(), crate::index::StoreMeta::default())
    }

    #[test]
    fn router_answers_every_registered_pattern() {
        let idx = empty_index();
        for r in ROUTES {
            // Substitute syntactically valid operands for placeholders.
            let concrete = r.pattern.replace("{id}", "0").replace("{prefix}", "00000");
            let (status, label, _) = route(&idx, &concrete);
            assert_eq!(label, r.pattern, "pattern must label its own traffic");
            // Account 0 doesn't exist in an empty index; everything
            // else must answer 200.
            assert!(
                status == 200 || (status == 404 && r.pattern.contains("{id}")),
                "{} -> {status}",
                r.pattern
            );
        }
    }

    #[test]
    fn invalid_operands_get_400_envelopes() {
        let idx = empty_index();
        let (s, _, body) = route(&idx, "/v1/account/notanumber/timeline");
        assert_eq!(s, 400);
        assert!(body.contains("\"invalid_account\""));
        let (s, _, body) = route(&idx, "/v1/range/zz");
        assert_eq!(s, 400);
        assert!(body.contains("\"invalid_prefix\""));
        // Lowercase hex is rejected: the API is uppercase like HIBP.
        let (s, _, _) = route(&idx, "/v1/range/abcde");
        assert_eq!(s, 400);
    }

    #[test]
    fn unknown_paths_are_unmatched_404s() {
        let idx = empty_index();
        let (s, label, body) = route(&idx, "/v2/healthz");
        assert_eq!((s, label), (404, "unmatched"));
        assert!(body.contains("\"not_found\""));
    }

    #[test]
    fn limiter_hands_out_burst_then_backpressure() {
        let l = Limiter::new(RateLimit::per_second(2));
        assert!(l.try_take().is_ok());
        assert!(l.try_take().is_ok());
        let retry = l.try_take().unwrap_err();
        assert!(retry >= 1);
    }
}
