//! The `pwnd serve-bench` workload: closed-loop concurrent clients.
//!
//! Each client thread owns one keep-alive connection and issues its
//! next request the moment the previous response lands (closed-loop:
//! offered load adapts to service rate, so the measured throughput is
//! the server's actual capacity at that concurrency, not a guess).
//! Clients walk a deterministic query mix — the three aggregate
//! endpoints plus sampled per-account and range lookups, each client
//! starting at a different offset so the instantaneous mix is diverse
//! — and record per-request wall-clock latency. The merged report
//! carries throughput, a status histogram, and latency percentiles;
//! `--json` emits the `pwnd-serve-bench/1` document recorded in the
//! BENCH trajectory.

use crate::index::QueryIndex;
use pwnd_telemetry::json::Json;
use pwnd_telemetry::Table;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent client connections (keep ≤ the server's worker
    /// threads — each connection pins a worker for its lifetime).
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: u64,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            clients: 4,
            requests: 10_000,
        }
    }
}

/// Merged results of one load-generator run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Client connections used.
    pub clients: usize,
    /// Requests completed.
    pub requests: u64,
    /// Responses by HTTP status code.
    pub statuses: BTreeMap<u16, u64>,
    /// Responses with a 5xx status (the CI floor requires zero).
    pub server_errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// Human-readable summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(&["serve-bench metric", "value"]).numeric();
        t.row(["clients", &self.clients.to_string()]);
        t.row(["requests", &self.requests.to_string()]);
        for (status, n) in &self.statuses {
            t.row([&format!("responses {status}"), &n.to_string()]);
        }
        t.row(["server errors (5xx)", &self.server_errors.to_string()]);
        t.row(["elapsed (s)", &format!("{:.3}", self.elapsed_secs)]);
        t.row(["throughput (req/s)", &format!("{:.0}", self.throughput_rps)]);
        t.row(["latency p50 (us)", &self.p50_us.to_string()]);
        t.row(["latency p90 (us)", &self.p90_us.to_string()]);
        t.row(["latency p99 (us)", &self.p99_us.to_string()]);
        t.row(["latency max (us)", &self.max_us.to_string()]);
        t
    }

    /// The `pwnd-serve-bench/1` JSON document.
    pub fn to_json(&self) -> String {
        let statuses = Json::Obj(
            self.statuses
                .iter()
                .map(|(s, n)| (s.to_string(), Json::U(*n)))
                .collect(),
        );
        let mut text = Json::Obj(vec![
            (
                "format".to_string(),
                Json::Str("pwnd-serve-bench/1".to_string()),
            ),
            ("clients".to_string(), Json::U(self.clients as u64)),
            ("requests".to_string(), Json::U(self.requests)),
            ("statuses".to_string(), statuses),
            ("server_errors".to_string(), Json::U(self.server_errors)),
            ("elapsed_secs".to_string(), Json::F(self.elapsed_secs)),
            ("throughput_rps".to_string(), Json::F(self.throughput_rps)),
            ("p50_us".to_string(), Json::U(self.p50_us)),
            ("p90_us".to_string(), Json::U(self.p90_us)),
            ("p99_us".to_string(), Json::U(self.p99_us)),
            ("max_us".to_string(), Json::U(self.max_us)),
        ])
        .pretty();
        text.push('\n');
        text
    }
}

/// The deterministic query mix: every aggregate endpoint, then up to
/// `samples` account lookups (timeline and accesses alternating over
/// evenly-strided ids) and `samples` range queries over the index's
/// real bucket prefixes. Pure function of the index contents.
pub fn query_mix(index: &QueryIndex, samples: usize) -> Vec<String> {
    let mut mix = vec![
        "/v1/healthz".to_string(),
        "/v1/stats".to_string(),
        "/v1/outlets".to_string(),
    ];
    let ids = index.account_ids();
    if !ids.is_empty() {
        let stride = (ids.len() / samples.max(1)).max(1);
        for (i, id) in ids.iter().step_by(stride).take(samples).enumerate() {
            if i % 2 == 0 {
                mix.push(format!("/v1/account/{id}/timeline"));
            } else {
                mix.push(format!("/v1/account/{id}/accesses"));
            }
        }
    }
    let prefixes = index.range_prefixes();
    if !prefixes.is_empty() {
        let stride = (prefixes.len() / samples.max(1)).max(1);
        for p in prefixes.iter().step_by(stride).take(samples) {
            mix.push(format!("/v1/range/{p}"));
        }
    }
    mix
}

/// Run the closed-loop workload against a listening server: `clients`
/// threads, each cycling `paths` (starting at its own offset) over one
/// keep-alive connection until the request budget is spent.
pub fn run(addr: SocketAddr, paths: &[String], opts: &LoadgenOptions) -> io::Result<LoadgenReport> {
    if paths.is_empty() {
        return Err(io::Error::other("loadgen: empty query mix"));
    }
    let clients = opts.clients.max(1);
    let per_client = opts.requests / clients as u64;
    let remainder = opts.requests % clients as u64;

    let started = Instant::now();
    let mut threads = Vec::with_capacity(clients);
    for c in 0..clients {
        let budget = per_client + u64::from((c as u64) < remainder);
        let paths = paths.to_vec();
        threads.push(std::thread::spawn(
            move || -> io::Result<Vec<(u16, u64)>> {
                let mut results = Vec::with_capacity(budget as usize);
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut out = stream;
                for i in 0..budget {
                    let path = &paths[(c + i as usize) % paths.len()];
                    let t0 = Instant::now();
                    out.write_all(
                        format!(
                            "GET {path} HTTP/1.1\r\nHost: pwnd\r\nConnection: keep-alive\r\n\r\n"
                        )
                        .as_bytes(),
                    )?;
                    let status = read_response(&mut reader)?;
                    results.push((
                        status,
                        u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                    ));
                }
                Ok(results)
            },
        ));
    }

    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(opts.requests as usize);
    for t in threads {
        let results = t
            .join()
            .map_err(|_| io::Error::other("loadgen: client thread panicked"))??;
        for (status, us) in results {
            *statuses.entry(status).or_insert(0) += 1;
            latencies.push(us);
        }
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    let requests = latencies.len() as u64;
    Ok(LoadgenReport {
        clients,
        requests,
        server_errors: statuses
            .iter()
            .filter(|(s, _)| **s >= 500)
            .map(|(_, n)| n)
            .sum(),
        throughput_rps: if elapsed_secs > 0.0 {
            requests as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        elapsed_secs,
        statuses,
    })
}

/// Read one HTTP/1.1 response off a keep-alive connection: status
/// line, headers (for `Content-Length`), exactly that many body bytes.
/// Returns the status code.
fn read_response<R: BufRead + Read>(reader: &mut R) -> io::Result<u16> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed mid-conversation",
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("malformed status line: {status_line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed inside headers",
            ));
        }
        let h = header.trim();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h
            .strip_prefix("Content-Length:")
            .or(h.strip_prefix("content-length:"))
        {
            content_length = v
                .trim()
                .parse()
                .map_err(|_| io::Error::other("bad Content-Length"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{ServeOptions, Server};
    use crate::index::StoreMeta;
    use pwnd_monitor::dataset::Dataset;
    use std::sync::Arc;

    #[test]
    fn mix_always_contains_the_aggregate_endpoints() {
        let idx = QueryIndex::from_dataset(&Dataset::default(), StoreMeta::default());
        let mix = query_mix(&idx, 8);
        assert_eq!(mix, vec!["/v1/healthz", "/v1/stats", "/v1/outlets"]);
    }

    #[test]
    fn loadgen_round_trips_against_a_live_server() {
        let idx = Arc::new(QueryIndex::from_dataset(
            &Dataset::default(),
            StoreMeta::default(),
        ));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&idx), ServeOptions::default())
            .expect("bind ephemeral");
        let mix = query_mix(&idx, 4);
        let report = run(
            server.addr(),
            &mix,
            &LoadgenOptions {
                clients: 2,
                requests: 40,
            },
        )
        .expect("loadgen");
        server.shutdown();
        assert_eq!(report.requests, 40);
        assert_eq!(report.server_errors, 0);
        assert_eq!(report.statuses.get(&200), Some(&40));
        assert!(report.throughput_rps > 0.0);
        assert!(report.to_json().contains("pwnd-serve-bench/1"));
    }
}
