//! The in-memory query index the daemon answers from.
//!
//! Ingest reads a verified store once and builds every structure the
//! `/v1` endpoints need, so no request ever touches the disk:
//!
//! * **Interned strings** — repeated access fields (IP, city, browser,
//!   OS, outlet) are stored once in a [`pwnd_sim::intern::Interner`]
//!   and referenced by 4-byte symbols; the per-access row is a fixed-
//!   size struct.
//! * **Per-account timelines** — each account's record, its accesses
//!   sorted by `(first_seen, cookie)`, and its monitoring gaps, keyed
//!   in a `BTreeMap` (deterministic iteration; the `HASH_ORDER` lint
//!   banishes hash maps from observable output everywhere else, and
//!   the serving layer holds itself to the same rule).
//! * **Aggregate tables** — the §4.1 overview (built with the same
//!   [`OverviewBuilder`] that powers `pwnd report`, so `/v1/stats` can
//!   never drift from the offline numbers), per-outlet rollups, and a
//!   dominant-class partition per the §4.2 taxonomy.
//! * **Range buckets** — HIBP-style k-anonymity lookup: each account's
//!   credential fingerprint is `SHA-256("pwnd:account:<id>")` in
//!   uppercase hex; `/v1/range/{prefix}` takes the first
//!   [`RANGE_PREFIX_LEN`] hex characters and returns every suffix in
//!   that bucket, so a client can check membership without revealing
//!   which account it holds.
//!
//! Every response-rendering method returns a fully formatted JSON body
//! (pretty-printed, trailing newline) that is a pure function of the
//! ingested records — no timestamps, no host state.

use crate::store::VerifiedStore;
use pwnd_analysis::stream::OverviewBuilder;
use pwnd_analysis::tables::Overview;
use pwnd_analysis::taxonomy::{classify, AccessClasses};
use pwnd_core::hash::Sha256;
use pwnd_monitor::dataset::{AccountRecord, Dataset, GapRecord, ParsedAccess};
use pwnd_monitor::export::{record_tag, tags};
use pwnd_sim::intern::{Interner, Symbol};
use pwnd_telemetry::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Hex characters of the credential-hash prefix a range query names.
/// Five characters ≈ one million buckets — the HIBP constant — so a
/// bucket stays small while revealing nothing useful about the account.
pub const RANGE_PREFIX_LEN: usize = 5;

/// Provenance of the data an index was built from, echoed by
/// `/v1/healthz` and `/v1/stats` so clients can pin responses to an
/// exact store build.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreMeta {
    /// The fleet's master seed.
    pub seed: u64,
    /// Template config fingerprint of the fleet that built the store.
    pub template_sha256: String,
    /// Shard files ingested.
    pub shards: usize,
    /// Total JSONL records the manifest claims.
    pub records: u64,
}

impl StoreMeta {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "format".to_string(),
                Json::Str(crate::store::MANIFEST_FORMAT.to_string()),
            ),
            ("seed".to_string(), Json::U(self.seed)),
            (
                "template_config_sha256".to_string(),
                Json::Str(self.template_sha256.clone()),
            ),
            ("shards".to_string(), Json::U(self.shards as u64)),
            ("records".to_string(), Json::U(self.records)),
        ])
    }
}

/// One ingested access: fixed-size, strings behind interner symbols.
struct AccessRow {
    cookie: u64,
    first_seen_secs: u64,
    last_seen_secs: u64,
    ip: Symbol,
    country: Option<Symbol>,
    city: Symbol,
    lat: f64,
    lon: f64,
    browser: Symbol,
    os: Symbol,
    via_tor: bool,
    opened: u32,
    sent: u32,
    drafts: u32,
    starred: u32,
    classes: AccessClasses,
}

/// One account's slice of the index.
struct AccountEntry {
    outlet: Symbol,
    advertised_region: Option<Symbol>,
    leaked_at_secs: u64,
    hijack_detected_secs: Option<u64>,
    block_detected_secs: Option<u64>,
    accesses: Vec<AccessRow>,
    gaps: Vec<GapRecord>,
}

/// Per-outlet rollup for `/v1/outlets`.
#[derive(Default)]
struct OutletAggregate {
    accounts: u64,
    accounts_accessed: u64,
    accesses: u64,
    emails_opened: u64,
    emails_sent: u64,
    drafts_created: u64,
    accounts_hijacked: u64,
    accounts_blocked: u64,
    tor_accesses: u64,
    /// Dominant-class partition in [`AccessClasses::LABELS`] order.
    by_class: [u64; 4],
}

/// [`AccessClasses::LABELS`] index of an access's dominant class.
fn dominant_index(c: AccessClasses) -> usize {
    AccessClasses::LABELS
        .iter()
        .position(|&l| l == c.dominant())
        .expect("dominant() returns a LABELS member")
}

/// The immutable, fully-built query index. Shared read-only across the
/// server's worker threads (`Arc<QueryIndex>`) — no locks on the read
/// path.
pub struct QueryIndex {
    strings: Interner,
    accounts: BTreeMap<u32, AccountEntry>,
    overview: Overview,
    class_totals: [u64; 4],
    outlets: BTreeMap<String, OutletAggregate>,
    /// prefix → sorted `(suffix, access count)` bucket.
    ranges: BTreeMap<String, Vec<(String, u64)>>,
    meta: StoreMeta,
}

impl QueryIndex {
    /// Ingest a verified fleet store directory.
    ///
    /// Opens the store with full hash verification
    /// ([`VerifiedStore::open`]), then streams every shard line once,
    /// indexing account, access, and gap records (opened-text records
    /// are not served and are skipped).
    ///
    /// ```no_run
    /// use pwnd_serve::index::QueryIndex;
    /// use std::path::Path;
    ///
    /// let index = QueryIndex::from_store(Path::new("fleet-store"))?;
    /// println!("{}", index.healthz_json());
    /// # std::io::Result::Ok(())
    /// ```
    pub fn from_store(dir: &Path) -> io::Result<QueryIndex> {
        let store = VerifiedStore::open(dir)?;
        let mut accounts: Vec<AccountRecord> = Vec::new();
        let mut accesses: Vec<ParsedAccess> = Vec::new();
        let mut gaps: Vec<GapRecord> = Vec::new();
        // lint:jsonl-consume
        store.for_each_line(|e, lineno, line| {
            let tag = match record_tag(line) {
                Some(t) if t != tags::OPENED_TEXT => t,
                _ => return Ok(()),
            };
            (|| -> Result<(), pwnd_telemetry::json::JsonError> {
                let v = Json::parse(line)?;
                let value = v.get("value").ok_or(pwnd_telemetry::json::JsonError {
                    msg: "missing value".to_string(),
                    at: 0,
                })?;
                if tag == tags::ACCOUNT {
                    accounts.push(AccountRecord::from_json_value(value)?);
                } else if tag == tags::ACCESS {
                    accesses.push(ParsedAccess::from_json_value(value)?);
                } else if tag == tags::GAP {
                    gaps.push(GapRecord::from_json_value(value)?);
                }
                Ok(())
            })()
            .map_err(|err| {
                io::Error::other(format!(
                    "{}: line {lineno}: {tag} record: {}",
                    e.file, err.msg
                ))
            })
        })?;
        let m = store.manifest();
        let meta = StoreMeta {
            seed: m.seed,
            template_sha256: m.template_sha256.clone(),
            shards: m.shards.len(),
            records: m.records(),
        };
        Ok(QueryIndex::build(&accounts, &accesses, &gaps, meta))
    }

    /// Build an index directly from an in-memory dataset — the same
    /// construction `from_store` performs after parsing, useful for
    /// tests and for serving a just-finished run without a store round
    /// trip.
    ///
    /// ```
    /// use pwnd_monitor::dataset::Dataset;
    /// use pwnd_serve::index::{QueryIndex, StoreMeta};
    ///
    /// let index = QueryIndex::from_dataset(&Dataset::default(), StoreMeta::default());
    /// assert!(index.account_ids().is_empty());
    /// assert!(index.healthz_json().contains("\"status\": \"ok\""));
    /// ```
    pub fn from_dataset(ds: &Dataset, meta: StoreMeta) -> QueryIndex {
        QueryIndex::build(&ds.accounts, &ds.accesses, &ds.gaps, meta)
    }

    fn build(
        accounts: &[AccountRecord],
        accesses: &[ParsedAccess],
        gaps: &[GapRecord],
        meta: StoreMeta,
    ) -> QueryIndex {
        // The shared overview: accounts strictly before accesses, the
        // order OverviewBuilder requires and `pwnd report` uses.
        let mut ob = OverviewBuilder::new();
        for rec in accounts {
            ob.add_account(rec);
        }
        for a in accesses {
            ob.add_access(a);
        }
        let overview = ob.finish();

        let mut strings = Interner::new();
        let mut table: BTreeMap<u32, AccountEntry> = BTreeMap::new();
        let mut outlets: BTreeMap<String, OutletAggregate> = BTreeMap::new();
        for rec in accounts {
            let outlet = strings.intern(&rec.outlet);
            table.insert(
                rec.account,
                AccountEntry {
                    outlet,
                    advertised_region: rec.advertised_region.as_deref().map(|r| strings.intern(r)),
                    leaked_at_secs: rec.leaked_at_secs,
                    hijack_detected_secs: rec.hijack_detected_secs,
                    block_detected_secs: rec.block_detected_secs,
                    accesses: Vec::new(),
                    gaps: Vec::new(),
                },
            );
            let agg = outlets.entry(rec.outlet.clone()).or_default();
            agg.accounts += 1;
            if rec.hijack_detected_secs.is_some() {
                agg.accounts_hijacked += 1;
            }
            if rec.block_detected_secs.is_some() {
                agg.accounts_blocked += 1;
            }
        }

        let mut class_totals = [0u64; 4];
        let mut range_accesses: BTreeMap<u32, u64> = BTreeMap::new();
        for a in accesses {
            let classes = classify(a);
            class_totals[dominant_index(classes)] += 1;
            *range_accesses.entry(a.account).or_insert(0) += 1;
            let row = AccessRow {
                cookie: a.cookie,
                first_seen_secs: a.first_seen_secs,
                last_seen_secs: a.last_seen_secs,
                ip: strings.intern(&a.ip),
                country: a.country.as_deref().map(|c| strings.intern(c)),
                city: strings.intern(&a.city),
                lat: a.lat,
                lon: a.lon,
                browser: strings.intern(&a.browser),
                os: strings.intern(&a.os),
                via_tor: a.via_tor,
                opened: a.opened,
                sent: a.sent,
                drafts: a.drafts,
                starred: a.starred,
                classes,
            };
            if let Some(entry) = table.get_mut(&a.account) {
                let outlet = strings.resolve(entry.outlet).to_string();
                entry.accesses.push(row);
                let agg = outlets.entry(outlet).or_default();
                agg.accesses += 1;
                agg.emails_opened += u64::from(a.opened);
                agg.emails_sent += u64::from(a.sent);
                agg.drafts_created += u64::from(a.drafts);
                if a.via_tor {
                    agg.tor_accesses += 1;
                }
                agg.by_class[dominant_index(classes)] += 1;
            }
        }
        for entry in table.values_mut() {
            entry
                .accesses
                .sort_by_key(|r| (r.first_seen_secs, r.cookie));
            if !entry.accesses.is_empty() {
                let outlet = strings.resolve(entry.outlet).to_string();
                outlets.entry(outlet).or_default().accounts_accessed += 1;
            }
        }
        for g in gaps {
            if let Some(entry) = table.get_mut(&g.account) {
                entry.gaps.push(g.clone());
            }
        }
        for entry in table.values_mut() {
            entry.gaps.sort_by_key(|g| (g.from_secs, g.until_secs));
        }

        // k-anonymity buckets: every known account gets a fingerprint,
        // accessed or not (a range query must not leak which accounts
        // saw traffic by omission).
        let mut ranges: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for &id in table.keys() {
            let digest = credential_hash(id);
            let (prefix, suffix) = digest.split_at(RANGE_PREFIX_LEN);
            ranges.entry(prefix.to_string()).or_default().push((
                suffix.to_string(),
                range_accesses.get(&id).copied().unwrap_or(0),
            ));
        }
        for bucket in ranges.values_mut() {
            bucket.sort();
        }

        QueryIndex {
            strings,
            accounts: table,
            overview,
            class_totals,
            outlets,
            ranges,
            meta,
        }
    }

    // ---- introspection (used by the load generator and tests) ---------

    /// Every known account id, ascending.
    pub fn account_ids(&self) -> Vec<u32> {
        self.accounts.keys().copied().collect()
    }

    /// Every non-empty range-bucket prefix, ascending.
    pub fn range_prefixes(&self) -> Vec<String> {
        self.ranges.keys().cloned().collect()
    }

    /// The shared §4.1 overview the index was built with — identical to
    /// `pwnd report --input` over the same store.
    pub fn overview(&self) -> &Overview {
        &self.overview
    }

    /// The store provenance echoed in responses.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    // ---- response bodies ----------------------------------------------

    /// `GET /v1/healthz` body.
    pub fn healthz_json(&self) -> String {
        let total: u64 = self.class_totals.iter().sum();
        render(Json::Obj(vec![
            ("status".to_string(), Json::Str("ok".to_string())),
            ("api".to_string(), Json::Str("v1".to_string())),
            ("store".to_string(), self.meta.to_json()),
            ("accounts".to_string(), Json::U(self.accounts.len() as u64)),
            ("accesses".to_string(), Json::U(total)),
        ]))
    }

    /// `GET /v1/stats` body.
    pub fn stats_json(&self) -> String {
        let o = &self.overview;
        let by = |m: &BTreeMap<String, usize>| {
            Json::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), Json::U(*v as u64)))
                    .collect(),
            )
        };
        let overview = Json::Obj(vec![
            (
                "total_accesses".to_string(),
                Json::U(o.total_accesses as u64),
            ),
            ("emails_opened".to_string(), Json::U(o.emails_opened)),
            ("emails_sent".to_string(), Json::U(o.emails_sent)),
            ("drafts_created".to_string(), Json::U(o.drafts_created)),
            (
                "accounts_accessed".to_string(),
                Json::U(o.accounts_accessed as u64),
            ),
            ("accessed_by_outlet".to_string(), by(&o.accessed_by_outlet)),
            ("accesses_by_outlet".to_string(), by(&o.accesses_by_outlet)),
            (
                "accounts_blocked".to_string(),
                Json::U(o.accounts_blocked as u64),
            ),
            (
                "accounts_hijacked".to_string(),
                Json::U(o.accounts_hijacked as u64),
            ),
        ]);
        let classes = Json::Obj(
            AccessClasses::LABELS
                .iter()
                .zip(self.class_totals.iter())
                .map(|(label, n)| (label.to_string(), Json::U(*n)))
                .collect(),
        );
        render(Json::Obj(vec![
            ("overview".to_string(), overview),
            ("classes".to_string(), classes),
            ("store".to_string(), self.meta.to_json()),
        ]))
    }

    /// `GET /v1/outlets` body.
    pub fn outlets_json(&self) -> String {
        let outlets = self
            .outlets
            .iter()
            .map(|(name, agg)| {
                let classes = Json::Obj(
                    AccessClasses::LABELS
                        .iter()
                        .zip(agg.by_class.iter())
                        .map(|(label, n)| (label.to_string(), Json::U(*n)))
                        .collect(),
                );
                Json::Obj(vec![
                    ("outlet".to_string(), Json::Str(name.clone())),
                    ("accounts".to_string(), Json::U(agg.accounts)),
                    (
                        "accounts_accessed".to_string(),
                        Json::U(agg.accounts_accessed),
                    ),
                    ("accesses".to_string(), Json::U(agg.accesses)),
                    ("emails_opened".to_string(), Json::U(agg.emails_opened)),
                    ("emails_sent".to_string(), Json::U(agg.emails_sent)),
                    ("drafts_created".to_string(), Json::U(agg.drafts_created)),
                    (
                        "accounts_hijacked".to_string(),
                        Json::U(agg.accounts_hijacked),
                    ),
                    (
                        "accounts_blocked".to_string(),
                        Json::U(agg.accounts_blocked),
                    ),
                    ("tor_accesses".to_string(), Json::U(agg.tor_accesses)),
                    ("classes".to_string(), classes),
                ])
            })
            .collect();
        render(Json::Obj(vec![("outlets".to_string(), Json::Arr(outlets))]))
    }

    /// `GET /v1/account/{id}/timeline` body; `None` when the account is
    /// unknown (the router answers 404).
    pub fn timeline_json(&self, id: u32) -> Option<String> {
        let entry = self.accounts.get(&id)?;
        let mut events: Vec<(u64, Json)> = Vec::new();
        events.push((
            entry.leaked_at_secs,
            Json::Obj(vec![
                ("t_secs".to_string(), Json::U(entry.leaked_at_secs)),
                ("event".to_string(), Json::Str("leaked".to_string())),
            ]),
        ));
        for r in &entry.accesses {
            events.push((
                r.first_seen_secs,
                Json::Obj(vec![
                    ("t_secs".to_string(), Json::U(r.first_seen_secs)),
                    ("event".to_string(), Json::Str("access".to_string())),
                    ("cookie".to_string(), Json::U(r.cookie)),
                    (
                        "duration_secs".to_string(),
                        Json::U(r.last_seen_secs.saturating_sub(r.first_seen_secs)),
                    ),
                    (
                        "class".to_string(),
                        Json::Str(r.classes.dominant().to_string()),
                    ),
                ]),
            ));
        }
        for g in &entry.gaps {
            events.push((
                g.from_secs,
                Json::Obj(vec![
                    ("t_secs".to_string(), Json::U(g.from_secs)),
                    ("event".to_string(), Json::Str("gap".to_string())),
                    ("kind".to_string(), Json::Str(g.kind.clone())),
                    ("until_secs".to_string(), Json::U(g.until_secs)),
                ]),
            ));
        }
        if let Some(t) = entry.hijack_detected_secs {
            events.push((
                t,
                Json::Obj(vec![
                    ("t_secs".to_string(), Json::U(t)),
                    (
                        "event".to_string(),
                        Json::Str("hijack_detected".to_string()),
                    ),
                ]),
            ));
        }
        if let Some(t) = entry.block_detected_secs {
            events.push((
                t,
                Json::Obj(vec![
                    ("t_secs".to_string(), Json::U(t)),
                    ("event".to_string(), Json::Str("block_detected".to_string())),
                ]),
            ));
        }
        // Stable sort: same-instant events keep the build order above
        // (leaked, accesses, gaps, detections), so the body is
        // deterministic.
        events.sort_by_key(|(t, _)| *t);
        Some(render(Json::Obj(vec![
            ("account".to_string(), Json::U(u64::from(id))),
            (
                "outlet".to_string(),
                Json::Str(self.strings.resolve(entry.outlet).to_string()),
            ),
            (
                "advertised_region".to_string(),
                entry
                    .advertised_region
                    .map(|s| Json::Str(self.strings.resolve(s).to_string()))
                    .unwrap_or(Json::Null),
            ),
            (
                "events".to_string(),
                Json::Arr(events.into_iter().map(|(_, e)| e).collect()),
            ),
        ])))
    }

    /// `GET /v1/account/{id}/accesses` body; `None` when the account is
    /// unknown.
    pub fn accesses_json(&self, id: u32) -> Option<String> {
        let entry = self.accounts.get(&id)?;
        let s = |sym: Symbol| Json::Str(self.strings.resolve(sym).to_string());
        let rows = entry
            .accesses
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("cookie".to_string(), Json::U(r.cookie)),
                    ("first_seen_secs".to_string(), Json::U(r.first_seen_secs)),
                    ("last_seen_secs".to_string(), Json::U(r.last_seen_secs)),
                    ("ip".to_string(), s(r.ip)),
                    (
                        "country".to_string(),
                        r.country.map(s).unwrap_or(Json::Null),
                    ),
                    ("city".to_string(), s(r.city)),
                    ("lat".to_string(), Json::F(r.lat)),
                    ("lon".to_string(), Json::F(r.lon)),
                    ("browser".to_string(), s(r.browser)),
                    ("os".to_string(), s(r.os)),
                    ("via_tor".to_string(), Json::Bool(r.via_tor)),
                    ("opened".to_string(), Json::U(u64::from(r.opened))),
                    ("sent".to_string(), Json::U(u64::from(r.sent))),
                    ("drafts".to_string(), Json::U(u64::from(r.drafts))),
                    ("starred".to_string(), Json::U(u64::from(r.starred))),
                    (
                        "classes".to_string(),
                        Json::Arr(
                            AccessClasses::LABELS
                                .iter()
                                .zip(r.classes.as_array().iter())
                                .filter(|(_, &member)| member)
                                .map(|(label, _)| Json::Str(label.to_string()))
                                .collect(),
                        ),
                    ),
                    (
                        "dominant".to_string(),
                        Json::Str(r.classes.dominant().to_string()),
                    ),
                ])
            })
            .collect();
        Some(render(Json::Obj(vec![
            ("account".to_string(), Json::U(u64::from(id))),
            (
                "outlet".to_string(),
                Json::Str(self.strings.resolve(entry.outlet).to_string()),
            ),
            ("accesses".to_string(), Json::Arr(rows)),
        ])))
    }

    /// `GET /v1/range/{prefix}` body. The prefix must already be
    /// validated ([`RANGE_PREFIX_LEN`] uppercase hex characters — the
    /// router answers 400 otherwise); an unknown prefix is a valid
    /// empty bucket, exactly like HIBP.
    pub fn range_json(&self, prefix: &str) -> String {
        let bucket = self.ranges.get(prefix).map(Vec::as_slice).unwrap_or(&[]);
        render(Json::Obj(vec![
            ("prefix".to_string(), Json::Str(prefix.to_string())),
            ("count".to_string(), Json::U(bucket.len() as u64)),
            (
                "suffixes".to_string(),
                Json::Arr(
                    bucket
                        .iter()
                        .map(|(suffix, accesses)| {
                            Json::Obj(vec![
                                ("suffix".to_string(), Json::Str(suffix.clone())),
                                ("accesses".to_string(), Json::U(*accesses)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]))
    }
}

/// The credential fingerprint of an account: uppercase hex
/// `SHA-256("pwnd:account:<id>")`. The simulation has no real
/// passwords; the fixed derivation stands in for "hash of the leaked
/// credential" and keeps range responses deterministic.
pub fn credential_hash(id: u32) -> String {
    Sha256::digest_hex(format!("pwnd:account:{id}").as_bytes()).to_uppercase()
}

/// Pretty-print with the canonical trailing newline every endpoint
/// body carries.
fn render(v: Json) -> String {
    let mut text = v.pretty();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(account: u32, cookie: u64, first: u64, sent: u32) -> ParsedAccess {
        ParsedAccess {
            account,
            cookie,
            first_seen_secs: first,
            last_seen_secs: first + 60,
            ip: "10.0.0.1".into(),
            country: Some("BR".into()),
            city: "Rio".into(),
            lat: -22.9,
            lon: -43.2,
            browser: "Firefox".into(),
            os: "Linux".into(),
            via_tor: false,
            opened: 0,
            sent,
            drafts: 0,
            starred: 0,
            hijacker: false,
            has_location_row: true,
        }
    }

    fn account(id: u32, outlet: &str) -> AccountRecord {
        AccountRecord {
            account: id,
            outlet: outlet.into(),
            advertised_region: None,
            leaked_at_secs: 100,
            hijack_detected_secs: None,
            block_detected_secs: None,
            coverage: None,
        }
    }

    fn sample() -> QueryIndex {
        let ds = Dataset {
            accounts: vec![account(0, "paste"), account(1, "forum")],
            accesses: vec![
                access(0, 9, 500, 0),
                access(0, 3, 200, 5),
                access(1, 1, 300, 0),
            ],
            opened_texts: vec![],
            gaps: vec![GapRecord {
                account: 1,
                kind: "scraper".into(),
                from_secs: 400,
                until_secs: 450,
            }],
        };
        QueryIndex::from_dataset(&ds, StoreMeta::default())
    }

    #[test]
    fn stats_match_shared_overview() {
        let idx = sample();
        assert_eq!(idx.overview().total_accesses, 3);
        let stats = idx.stats_json();
        assert!(stats.contains("\"total_accesses\": 3"));
        assert!(stats.contains("\"Spammer\": 1"));
        assert!(stats.contains("\"Curious\": 2"));
    }

    #[test]
    fn timeline_sorts_events_and_reports_leak_first() {
        let idx = sample();
        let body = idx.timeline_json(0).unwrap();
        let leaked = body.find("\"leaked\"").unwrap();
        let a200 = body.find("\"t_secs\": 200").unwrap();
        let a500 = body.find("\"t_secs\": 500").unwrap();
        assert!(leaked < a200 && a200 < a500, "{body}");
        assert!(idx.timeline_json(77).is_none());
    }

    #[test]
    fn accesses_are_sorted_by_first_seen_then_cookie() {
        let idx = sample();
        let body = idx.accesses_json(0).unwrap();
        let c3 = body.find("\"cookie\": 3").unwrap();
        let c9 = body.find("\"cookie\": 9").unwrap();
        assert!(c3 < c9, "{body}");
    }

    #[test]
    fn every_account_lands_in_exactly_one_range_bucket() {
        let idx = sample();
        let total: usize = idx
            .range_prefixes()
            .iter()
            .map(|p| {
                let v = Json::parse(&idx.range_json(p)).unwrap();
                v.get("count").and_then(Json::as_u64).unwrap() as usize
            })
            .sum();
        assert_eq!(total, 2);
        // Unknown prefixes are empty buckets, not errors.
        assert!(idx.range_json("00000").contains("\"count\": 0"));
    }

    #[test]
    fn credential_hash_is_stable_uppercase_hex() {
        let h = credential_hash(0);
        assert_eq!(h.len(), 64);
        assert_eq!(h, h.to_uppercase());
        assert_eq!(h, credential_hash(0));
        assert_ne!(h, credential_hash(1));
    }
}
