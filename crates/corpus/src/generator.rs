//! Mailbox synthesis: Enron-like corporate threads with translated
//! timestamps.
//!
//! The paper sent each honey account 200–300 sanitized Enron messages,
//! translating the original early-2000s timestamps into recent times
//! "slightly earlier than our experiment start date" while preserving
//! their relative order. We synthesize equivalent threads directly, then
//! run them through the same order-preserving timestamp translation the
//! paper describes (exposed as [`translate_timestamps`] so it can be
//! tested on its own).

use crate::archetype::Archetype;
use crate::email::{Email, EmailId, MailTime};
use crate::persona::Persona;
use crate::vocab::{FILLER, SUBJECT_TEMPLATES};
use pwnd_sim::dist::Zipf;
use pwnd_sim::Rng;

/// How many days of mailbox history precede the leak.
pub const HISTORY_WINDOW_DAYS: f64 = 90.0;

/// Probability that a given message carries a sensitive term.
const SENSITIVE_MESSAGE_RATE: f64 = 0.05;

/// Order-preserving timestamp translation (§3.2): map original timestamps
/// (arbitrary units, e.g. seconds in 2001) onto the `window_days` window
/// ending one hour before the epoch. Given `t1 < t2` in the input, the
/// output preserves `T1 < T2` up to rounding.
pub fn translate_timestamps(original: &[i64], window_days: f64) -> Vec<MailTime> {
    if original.is_empty() {
        return Vec::new();
    }
    let lo = *original.iter().min().expect("non-empty");
    let hi = *original.iter().max().expect("non-empty");
    let span = (hi - lo).max(1) as f64;
    let window_secs = window_days * 86_400.0;
    let end = -3_600.0; // one hour before the leak
    let start = end - window_secs;
    original
        .iter()
        .map(|&t| {
            let frac = (t - lo) as f64 / span;
            MailTime((start + frac * window_secs) as i64)
        })
        .collect()
}

/// Generates seeded mailboxes for honey accounts.
pub struct CorpusGenerator {
    next_id: u64,
    filler: Zipf,
    archetype: Archetype,
}

impl Default for CorpusGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl CorpusGenerator {
    /// A fresh generator (ids start at 1).
    pub fn new() -> CorpusGenerator {
        CorpusGenerator::with_archetype(Archetype::CorporateEmployee)
    }

    /// A generator producing mailboxes for a specific persona archetype
    /// (the §5 activist-scenario extension).
    pub fn with_archetype(archetype: Archetype) -> CorpusGenerator {
        CorpusGenerator {
            next_id: 1,
            filler: Zipf::new(FILLER.len(), 1.05),
            archetype,
        }
    }

    fn fresh_id(&mut self) -> EmailId {
        let id = EmailId(self.next_id);
        self.next_id += 1;
        id
    }

    fn pick_filler<'a>(&self, rng: &mut Rng) -> &'a str {
        FILLER[self.filler.sample(rng)]
    }

    fn sentence(&self, rng: &mut Rng, sensitive: bool) -> String {
        // Words append straight into the sentence buffer: no per-word
        // String, no intermediate Vec, no join.
        let mut s = String::with_capacity(96);
        let opener = *rng.choose(&[
            "Please find",
            "As discussed,",
            "Following up on",
            "Attached is",
            "Quick note about",
            "We would like to review",
        ]);
        s.push_str(opener);
        let core = self.archetype.core_vocab();
        let n_core = rng.range_u64(2, 5) as usize;
        for _ in 0..n_core {
            let word = *rng.choose(core);
            s.push(' ');
            s.push_str(word);
        }
        if sensitive {
            let pool = self.archetype.sensitive_vocab();
            let n_sensitive = rng.range_u64(2, 5) as usize;
            for _ in 0..n_sensitive {
                let word = *rng.choose(pool);
                s.push(' ');
                s.push_str(word);
            }
        }
        let n_fill = rng.range_u64(3, 9) as usize;
        for _ in 0..n_fill {
            s.push(' ');
            s.push_str(self.pick_filler(rng));
        }
        s.push('.');
        s
    }

    fn subject(&self, rng: &mut Rng) -> String {
        let template = *rng.choose(SUBJECT_TEMPLATES);
        let mut out = String::with_capacity(template.len() + 16);
        let mut rest = template;
        while let Some(pos) = rest.find("{}") {
            let word = *rng.choose(self.archetype.core_vocab());
            out.push_str(&rest[..pos]);
            out.push_str(word);
            rest = &rest[pos + 2..];
        }
        out.push_str(rest);
        out
    }

    fn body(&self, rng: &mut Rng, owner: &Persona, sender_name: &str) -> String {
        let n_sentences = rng.range_u64(2, 6) as usize;
        let mut lines = Vec::with_capacity(n_sentences + 2);
        lines.push(format!("Hi {},", owner.first)); // lint:allow(alloc-hot): greeting line is email content being composed
        for _ in 0..n_sentences {
            let sensitive = rng.chance(SENSITIVE_MESSAGE_RATE);
            lines.push(self.sentence(rng, sensitive));
        }
        // lint:allow(alloc-hot): signature line is email content being composed
        lines.push(format!(
            "Thanks,\n{sender_name}\n{}",
            self.archetype.organization()
        ));
        lines.join("\n")
    }

    /// Generate one seeded mailbox for `owner`, exchanging mail with
    /// `peers` (other personas at the same company). Produces between
    /// `min_emails` and `max_emails` messages whose timestamps all fall in
    /// the [`HISTORY_WINDOW_DAYS`] window before the epoch, in
    /// chronological order.
    // lint:hot-root
    pub fn generate_mailbox(
        &mut self,
        owner: &Persona,
        peers: &[Persona],
        min_emails: usize,
        max_emails: usize,
        rng: &mut Rng,
    ) -> Vec<Email> {
        assert!(min_emails <= max_emails && min_emails > 0);
        assert!(!peers.is_empty(), "mailbox needs at least one peer");
        let target = rng.range_u64(min_emails as u64, max_emails as u64 + 1) as usize;

        // First synthesize "original era" timestamps (seconds in a fake
        // 2001), then translate them — the same two-step the paper ran on
        // Enron data.
        let mut originals: Vec<i64> = Vec::with_capacity(target);
        let mut cursor: i64 = 0;
        let mut plans: Vec<(usize, bool)> = Vec::with_capacity(target); // (peer idx, owner_sends)
        while plans.len() < target {
            // A thread: 1–4 messages, alternating direction.
            let peer_idx = rng.index(peers.len());
            let thread_len = (rng.range_u64(1, 5) as usize).min(target - plans.len());
            let mut owner_sends = rng.chance(0.4);
            for _ in 0..thread_len {
                cursor += rng.range_u64(1_800, 86_400 * 3) as i64;
                originals.push(cursor);
                plans.push((peer_idx, owner_sends));
                owner_sends = !owner_sends;
            }
        }
        let times = translate_timestamps(&originals, HISTORY_WINDOW_DAYS);

        let mut subject = self.subject(rng);
        let mut last_peer = usize::MAX;
        let mut out = Vec::with_capacity(target);
        for (i, &(peer_idx, owner_sends)) in plans.iter().enumerate() {
            if peer_idx != last_peer {
                subject = self.subject(rng);
                last_peer = peer_idx;
            }
            let peer = &peers[peer_idx];
            let peer_address = format!("{}@{}", peer.handle, self.archetype.domain()); // lint:allow(alloc-hot): each Email owns its address strings
            let (from, to, sender_name) = if owner_sends {
                (
                    owner.webmail_address(),
                    vec![peer_address], // lint:allow(alloc-hot): the recipient list is the Email's own field
                    owner.full_name(),
                )
            } else {
                (
                    peer_address,
                    vec![owner.webmail_address()], // lint:allow(alloc-hot): the recipient list is the Email's own field
                    peer.full_name(),
                )
            };
            out.push(Email {
                id: self.fresh_id(),
                from,
                to,
                subject: format!("RE: {subject}"), // lint:allow(alloc-hot): per-message subject is the Email's own field
                body: self.body(rng, owner, &sender_name),
                timestamp: times[i],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persona::PersonaFactory;

    fn setup() -> (Persona, Vec<Persona>, Rng) {
        let mut rng = Rng::seed_from(42);
        let mut f = PersonaFactory::new();
        let owner = f.generate(None, &mut rng);
        let peers = f.generate_batch(8, |_| None, &mut rng);
        (owner, peers, rng)
    }

    #[test]
    fn mailbox_size_in_paper_range() {
        let (owner, peers, mut rng) = setup();
        let mut g = CorpusGenerator::new();
        let mb = g.generate_mailbox(&owner, &peers, 200, 300, &mut rng);
        assert!((200..=300).contains(&mb.len()), "{}", mb.len());
    }

    #[test]
    fn timestamps_sorted_and_before_epoch() {
        let (owner, peers, mut rng) = setup();
        let mut g = CorpusGenerator::new();
        let mb = g.generate_mailbox(&owner, &peers, 200, 300, &mut rng);
        assert!(mb.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        for e in &mb {
            assert!(e.timestamp.0 < 0, "seeded email after epoch");
            assert!(e.timestamp.as_days_f64() >= -(HISTORY_WINDOW_DAYS + 1.0));
        }
    }

    #[test]
    fn translation_preserves_order() {
        let orig = vec![500, 100, 100_000, 2_000];
        let translated = translate_timestamps(&orig, 30.0);
        assert!(translated[1] < translated[0]);
        assert!(translated[0] < translated[3]);
        assert!(translated[3] < translated[2]);
        for t in &translated {
            assert!(t.0 < 0);
        }
    }

    #[test]
    fn translation_handles_degenerate_inputs() {
        assert!(translate_timestamps(&[], 30.0).is_empty());
        let same = translate_timestamps(&[7, 7, 7], 30.0);
        assert_eq!(same.len(), 3);
        assert!(same.iter().all(|t| t.0 < 0));
    }

    #[test]
    fn every_message_involves_owner() {
        let (owner, peers, mut rng) = setup();
        let mut g = CorpusGenerator::new();
        let mb = g.generate_mailbox(&owner, &peers, 200, 250, &mut rng);
        let addr = owner.webmail_address();
        for e in &mb {
            assert!(e.from == addr || e.to.contains(&addr));
        }
    }

    #[test]
    fn corpus_mentions_energy_but_never_bitcoin_or_enron() {
        let (owner, peers, mut rng) = setup();
        let mut g = CorpusGenerator::new();
        let mb = g.generate_mailbox(&owner, &peers, 250, 300, &mut rng);
        let all: String = mb.iter().map(|e| e.full_text().to_lowercase()).collect();
        assert!(all.contains("energy"));
        assert!(all.contains("transfer"));
        assert!(!all.contains("bitcoin"));
        assert!(!all.contains("enron"));
    }

    #[test]
    fn sensitive_terms_are_rare_but_present() {
        let (owner, peers, mut rng) = setup();
        let mut g = CorpusGenerator::new();
        let mb = g.generate_mailbox(&owner, &peers, 250, 300, &mut rng);
        let with_payment = mb
            .iter()
            .filter(|e| e.contains_term("payment") || e.contains_term("account"))
            .count();
        assert!(with_payment > 0, "no sensitive messages at all");
        assert!(
            (with_payment as f64) < mb.len() as f64 * 0.35,
            "sensitive messages too common: {with_payment}/{}",
            mb.len()
        );
    }

    #[test]
    fn ids_are_unique_across_mailboxes() {
        let (owner, peers, mut rng) = setup();
        let mut g = CorpusGenerator::new();
        let a = g.generate_mailbox(&owner, &peers, 200, 210, &mut rng);
        let b = g.generate_mailbox(&owner, &peers, 200, 210, &mut rng);
        let mut ids: Vec<u64> = a.iter().chain(&b).map(|e| e.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len() + b.len());
    }
}
