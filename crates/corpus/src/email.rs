//! The email message type shared across the workspace.

use std::fmt;

/// Seconds relative to the experiment epoch (the leak instant). Negative
/// values are the seeded mailbox history — the paper translated old Enron
/// timestamps into the weeks *before* the experiment start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MailTime(pub i64);

impl MailTime {
    /// A time `days` before the epoch.
    pub fn days_before_epoch(days: f64) -> MailTime {
        MailTime(-(days * 86_400.0) as i64)
    }

    /// Convert a non-negative simulation instant.
    pub fn from_sim(t: pwnd_sim::SimTime) -> MailTime {
        MailTime(t.as_secs() as i64)
    }

    /// Fractional days relative to the epoch (negative = before the leak).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
}

impl fmt::Display for MailTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.2}d", self.as_days_f64())
    }
}

/// Unique message identifier, assigned by the generator or the service.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EmailId(pub u64);

impl fmt::Debug for EmailId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// An email message. Header-level only — the monitoring infrastructure and
/// the analyses never look below the (from, to, subject, body, time) tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct Email {
    /// Message id.
    pub id: EmailId,
    /// Sender address.
    pub from: String,
    /// Recipient addresses.
    pub to: Vec<String>,
    /// Subject line.
    pub subject: String,
    /// Plain-text body.
    pub body: String,
    /// Send (or draft-creation) time.
    pub timestamp: MailTime,
}

impl Email {
    /// Subject plus body — the text the tokenizer consumes.
    pub fn full_text(&self) -> String {
        format!("{}\n{}", self.subject, self.body)
    }

    /// Whether this message mentions `needle` (case-insensitive), the
    /// primitive behind the webmail search index's fallback path.
    pub fn contains_term(&self, needle: &str) -> bool {
        let n = needle.to_lowercase();
        self.subject.to_lowercase().contains(&n) || self.body.to_lowercase().contains(&n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_sim::{SimDuration, SimTime};

    fn email() -> Email {
        Email {
            id: EmailId(1),
            from: "a@example.com".into(),
            to: vec!["b@example.com".into()],
            subject: "Quarterly Transfer".into(),
            body: "The energy transfer schedule is attached.".into(),
            timestamp: MailTime::days_before_epoch(10.0),
        }
    }

    #[test]
    fn mail_time_ordering_spans_epoch() {
        let before = MailTime::days_before_epoch(5.0);
        let after = MailTime::from_sim(SimTime::ZERO + SimDuration::days(5));
        assert!(before < MailTime(0));
        assert!(MailTime(0) < after);
        assert!((before.as_days_f64() + 5.0).abs() < 1e-9);
    }

    #[test]
    fn contains_term_is_case_insensitive() {
        let e = email();
        assert!(e.contains_term("TRANSFER"));
        assert!(e.contains_term("energy"));
        assert!(!e.contains_term("bitcoin"));
    }

    #[test]
    fn full_text_includes_subject_and_body() {
        let t = email().full_text();
        assert!(t.contains("Quarterly"));
        assert!(t.contains("attached"));
    }
}
