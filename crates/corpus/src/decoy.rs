//! Decoy sensitive emails — the paper's future-work seeding.
//!
//! §5 proposes seeding honey accounts "with some specially crafted emails
//! containing decoy sensitive information, for instance, fake bank account
//! information and login credentials" to widen the net of observable
//! search hits. We implement that extension: optional decoy messages with
//! fake banking details and credentials, each carrying a unique beacon
//! token so an analysis can tell exactly which decoy an attacker opened.

use crate::email::{Email, EmailId, MailTime};
use crate::persona::Persona;
use pwnd_sim::Rng;

/// Kinds of decoy content, each targeting a different gold-digger search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecoyKind {
    /// Fake bank account / routing numbers.
    BankAccount,
    /// Fake credentials for another online service.
    ServiceCredentials,
    /// Fake salary / payroll statement.
    PayrollStatement,
}

impl DecoyKind {
    /// All decoy kinds.
    pub const ALL: [DecoyKind; 3] = [
        DecoyKind::BankAccount,
        DecoyKind::ServiceCredentials,
        DecoyKind::PayrollStatement,
    ];
}

/// A generated decoy plus its tracking beacon.
#[derive(Clone, Debug)]
pub struct Decoy {
    /// The decoy message itself.
    pub email: Email,
    /// What kind of bait this is.
    pub kind: DecoyKind,
    /// Unique token embedded in the body; if it ever shows up in an opened
    /// email or an exfiltrated document, we know which decoy leaked.
    pub beacon: String,
}

/// Generate `DecoyKind::ALL`-covering decoys for one account. Ids must not
/// collide with the corpus generator's; callers pass a disjoint id base.
pub fn generate_decoys(owner: &Persona, id_base: u64, rng: &mut Rng) -> Vec<Decoy> {
    DecoyKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let beacon = format!("dcy{:012x}", rng.next_u64() & 0xFFFF_FFFF_FFFF);
            let (subject, body) = render(kind, owner, &beacon, rng);
            Decoy {
                email: Email {
                    id: EmailId(id_base + i as u64),
                    from: "no-reply@firstmeridianbank.example".into(),
                    to: vec![owner.webmail_address()],
                    subject,
                    body,
                    timestamp: MailTime::days_before_epoch(rng.range_f64(2.0, 30.0)),
                },
                kind,
                beacon,
            }
        })
        .collect()
}

fn render(kind: DecoyKind, owner: &Persona, beacon: &str, rng: &mut Rng) -> (String, String) {
    match kind {
        DecoyKind::BankAccount => (
            "Your account statement is available".into(),
            format!(
                "Dear {},\nYour banking statement is listed below.\n\
                 Account number: {:010}\nRouting number: {:09}\n\
                 Current balance: ${}.00\nReference: {beacon}\n",
                owner.full_name(),
                rng.below(10_000_000_000),
                rng.below(1_000_000_000),
                rng.range_u64(2_000, 90_000),
            ),
        ),
        DecoyKind::ServiceCredentials => (
            "Password reset confirmation".into(),
            format!(
                "Hello {},\nYour new login credentials for the payment portal:\n\
                 username: {}\npassword: hx{:08x}\nKeep this email safe.\nRef: {beacon}\n",
                owner.first,
                owner.handle,
                rng.next_u64() as u32,
            ),
        ),
        DecoyKind::PayrollStatement => (
            "Payroll: salary statement attached".into(),
            format!(
                "Dear {},\nYour salary payment of ${}.00 was processed.\n\
                 Details are listed below in the attached statement.\nRef: {beacon}\n",
                owner.full_name(),
                rng.range_u64(3_000, 12_000),
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persona::PersonaFactory;

    fn owner() -> (Persona, Rng) {
        let mut rng = Rng::seed_from(9);
        let p = PersonaFactory::new().generate(None, &mut rng);
        (p, rng)
    }

    #[test]
    fn covers_all_kinds_with_unique_beacons() {
        let (p, mut rng) = owner();
        let decoys = generate_decoys(&p, 1_000_000, &mut rng);
        assert_eq!(decoys.len(), DecoyKind::ALL.len());
        let mut beacons: Vec<&str> = decoys.iter().map(|d| d.beacon.as_str()).collect();
        beacons.sort_unstable();
        beacons.dedup();
        assert_eq!(beacons.len(), decoys.len());
        for d in &decoys {
            assert!(d.email.body.contains(&d.beacon));
        }
    }

    #[test]
    fn decoys_predate_the_leak() {
        let (p, mut rng) = owner();
        for d in generate_decoys(&p, 5_000, &mut rng) {
            assert!(d.email.timestamp.0 < 0);
        }
    }

    #[test]
    fn decoys_contain_searchable_sensitive_terms() {
        let (p, mut rng) = owner();
        let all: String = generate_decoys(&p, 0, &mut rng)
            .iter()
            .map(|d| d.email.full_text().to_lowercase())
            .collect();
        for term in ["account", "payment", "password", "salary"] {
            assert!(all.contains(term), "missing {term}");
        }
    }

    #[test]
    fn ids_use_the_requested_base() {
        let (p, mut rng) = owner();
        let decoys = generate_decoys(&p, 77_000, &mut rng);
        assert!(decoys.iter().all(|d| d.email.id.0 >= 77_000));
    }
}
