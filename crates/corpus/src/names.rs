//! Name pools for fictitious personas.
//!
//! The paper assigned accounts "random combinations of popular first and
//! last names" (following Stringhini et al.'s social-honeypot setup).
//! These are US/UK census-popular names.

/// Popular first names.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "John",
    "Patricia",
    "Robert",
    "Jennifer",
    "Michael",
    "Linda",
    "William",
    "Elizabeth",
    "David",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Nancy",
    "Daniel",
    "Lisa",
    "Matthew",
    "Margaret",
    "Anthony",
    "Betty",
    "Donald",
    "Sandra",
    "Mark",
    "Ashley",
    "Paul",
    "Dorothy",
    "Steven",
    "Kimberly",
    "Andrew",
    "Emily",
    "Kenneth",
    "Donna",
    "George",
    "Michelle",
    "Joshua",
    "Carol",
    "Kevin",
    "Amanda",
    "Brian",
    "Melissa",
    "Edward",
    "Deborah",
    "Ronald",
    "Stephanie",
    "Timothy",
    "Rebecca",
    "Jason",
    "Laura",
    "Jeffrey",
    "Sharon",
    "Ryan",
    "Cynthia",
    "Jacob",
    "Kathleen",
    "Gary",
    "Amy",
    "Nicholas",
    "Shirley",
    "Eric",
    "Angela",
    "Jonathan",
    "Helen",
    "Stephen",
    "Anna",
    "Larry",
    "Brenda",
    "Justin",
    "Pamela",
    "Scott",
    "Nicole",
    "Brandon",
    "Samantha",
];

/// Popular last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Gomez",
    "Phillips",
    "Evans",
    "Turner",
    "Diaz",
    "Parker",
    "Cruz",
    "Edwards",
    "Collins",
    "Reyes",
    "Stewart",
    "Morris",
    "Morales",
    "Murphy",
    "Cook",
    "Rogers",
    "Gutierrez",
    "Ortiz",
    "Morgan",
    "Cooper",
    "Peterson",
    "Bailey",
    "Reed",
    "Kelly",
    "Howard",
    "Ramos",
    "Kim",
    "Cox",
    "Ward",
    "Richardson",
];

/// The fictitious company replacing "Enron" in every generated email.
pub const COMPANY_NAME: &str = "Meridian Power Group";

/// Short form of the company name, used in email domains and signatures.
pub const COMPANY_DOMAIN: &str = "meridianpower.example";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_large_enough_for_100_accounts() {
        // 100 accounts need distinct combinations; with 78×79 pairs the
        // birthday-collision probability is negligible after dedup.
        assert!(FIRST_NAMES.len() >= 60);
        assert!(LAST_NAMES.len() >= 60);
    }

    #[test]
    fn names_are_nonempty_and_capitalized() {
        for n in FIRST_NAMES.iter().chain(LAST_NAMES) {
            assert!(!n.is_empty());
            assert!(n.chars().next().unwrap().is_ascii_uppercase());
        }
    }

    #[test]
    fn company_is_not_enron() {
        assert!(!COMPANY_NAME.to_lowercase().contains("enron"));
    }
}
