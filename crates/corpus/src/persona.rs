//! Fictitious account owners.
//!
//! Each honey account belongs to a persona: a popular first/last name
//! combination, a date of birth, and — for the leak groups that advertise
//! location — a home city chosen so that the advertised cities' midpoint
//! is London (UK) or Pontiac (US), mirroring the paper's §4.3.4 setup
//! ("we chose decoy UK and US locations such that London and Pontiac were
//! the midpoints of those locations").

use crate::names::{COMPANY_DOMAIN, FIRST_NAMES, LAST_NAMES};
use pwnd_net::geo::{City, GeoDb, UK_MIDPOINT, US_MIDPOINT};
use pwnd_sim::Rng;
use std::collections::HashSet;

/// Which decoy region a persona is advertised to live in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecoyRegion {
    /// Advertised around London.
    Uk,
    /// Advertised around Pontiac.
    Us,
}

impl DecoyRegion {
    /// The advertised midpoint for this region.
    pub fn midpoint(self) -> pwnd_net::geo::GeoPoint {
        match self {
            DecoyRegion::Uk => UK_MIDPOINT,
            DecoyRegion::Us => US_MIDPOINT,
        }
    }

    /// ISO country code of the region.
    pub fn country(self) -> &'static str {
        match self {
            DecoyRegion::Uk => "GB",
            DecoyRegion::Us => "US",
        }
    }
}

/// A simple date of birth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DateOfBirth {
    /// Four-digit year.
    pub year: u32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month (kept ≤ 28 to avoid month-length edge cases in a
    /// purely decorative field).
    pub day: u32,
}

impl std::fmt::Display for DateOfBirth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A fictitious employee of the fictitious company.
#[derive(Clone, Debug)]
pub struct Persona {
    /// First name, drawn from the popular-names pool.
    pub first: &'static str,
    /// Last name, drawn from the popular-names pool.
    pub last: &'static str,
    /// Mailbox handle, e.g. `james.smith4`.
    pub handle: String,
    /// Date of birth, included in location-bearing leaks.
    pub dob: DateOfBirth,
    /// Decoy region, if this persona advertises a location.
    pub region: Option<DecoyRegion>,
    /// Home city (always set; only *advertised* when `region` is `Some`).
    pub home_city: &'static City,
}

impl Persona {
    /// The persona's webmail address.
    pub fn webmail_address(&self) -> String {
        format!("{}@honeymail.example", self.handle) // lint:allow(alloc-hot): returns an owned address by contract
    }

    /// The persona's corporate address at the fictitious company.
    pub fn corporate_address(&self) -> String {
        format!("{}@{}", self.handle, COMPANY_DOMAIN)
    }

    /// Full display name.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first, self.last) // lint:allow(alloc-hot): returns an owned name by contract
    }
}

/// Generates distinct personas.
pub struct PersonaFactory {
    geo: GeoDb,
    used_handles: HashSet<String>,
    counter: u32,
}

impl Default for PersonaFactory {
    fn default() -> Self {
        Self::new()
    }
}

impl PersonaFactory {
    /// A factory over the built-in gazetteer.
    pub fn new() -> PersonaFactory {
        PersonaFactory {
            geo: GeoDb::new(),
            used_handles: HashSet::new(),
            counter: 0,
        }
    }

    /// Generate one persona. `region` controls the advertised decoy
    /// location; personas without one still live somewhere (their city is
    /// sampled near a midpoint at 600 km so the account history looks
    /// plausible, but the leak never mentions it).
    pub fn generate(&mut self, region: Option<DecoyRegion>, rng: &mut Rng) -> Persona {
        let first = *rng.choose(FIRST_NAMES);
        let last = *rng.choose(LAST_NAMES);
        let base = format!("{}.{}", first.to_lowercase(), last.to_lowercase());
        let handle = if self.used_handles.contains(&base) {
            loop {
                self.counter += 1;
                let candidate = format!("{base}{}", self.counter);
                if !self.used_handles.contains(&candidate) {
                    break candidate;
                }
            }
        } else {
            base
        };
        self.used_handles.insert(handle.clone());

        let dob = DateOfBirth {
            year: rng.range_u64(1960, 1995) as u32,
            month: rng.range_u64(1, 13) as u32,
            day: rng.range_u64(1, 29) as u32,
        };
        let effective = region.unwrap_or(if rng.chance(0.5) {
            DecoyRegion::Uk
        } else {
            DecoyRegion::Us
        });
        // Advertised decoy cities are picked so the group's centroid is
        // the midpoint; sampling within 600 km of it approximates that.
        let home_city = self.geo.sample_near(effective.midpoint(), 600.0, rng);
        Persona {
            first,
            last,
            handle,
            dob,
            region,
            home_city,
        }
    }

    /// Generate `n` personas with the given region assignment function.
    pub fn generate_batch(
        &mut self,
        n: usize,
        region_of: impl Fn(usize) -> Option<DecoyRegion>,
        rng: &mut Rng,
    ) -> Vec<Persona> {
        (0..n).map(|i| self.generate(region_of(i), rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_net::geo::haversine_km;

    #[test]
    fn handles_are_unique() {
        let mut f = PersonaFactory::new();
        let mut rng = Rng::seed_from(1);
        let batch = f.generate_batch(200, |_| None, &mut rng);
        let handles: HashSet<_> = batch.iter().map(|p| p.handle.clone()).collect();
        assert_eq!(handles.len(), 200);
    }

    #[test]
    fn uk_personas_live_near_london() {
        let mut f = PersonaFactory::new();
        let mut rng = Rng::seed_from(2);
        for _ in 0..50 {
            let p = f.generate(Some(DecoyRegion::Uk), &mut rng);
            let d = haversine_km(p.home_city.point, UK_MIDPOINT);
            assert!(d <= 600.0, "{} at {d} km", p.home_city.name);
        }
    }

    #[test]
    fn us_personas_live_near_pontiac() {
        let mut f = PersonaFactory::new();
        let mut rng = Rng::seed_from(3);
        for _ in 0..50 {
            let p = f.generate(Some(DecoyRegion::Us), &mut rng);
            let d = haversine_km(p.home_city.point, US_MIDPOINT);
            assert!(d <= 600.0, "{} at {d} km", p.home_city.name);
        }
    }

    #[test]
    fn addresses_are_well_formed() {
        let mut f = PersonaFactory::new();
        let mut rng = Rng::seed_from(4);
        let p = f.generate(None, &mut rng);
        assert!(p.webmail_address().ends_with("@honeymail.example"));
        assert!(p.corporate_address().contains('@'));
        assert!(p.full_name().contains(' '));
        assert!(p.region.is_none());
    }

    #[test]
    fn dob_in_plausible_range() {
        let mut f = PersonaFactory::new();
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            let p = f.generate(Some(DecoyRegion::Uk), &mut rng);
            assert!((1960..1995).contains(&p.dob.year));
            assert!((1..=12).contains(&p.dob.month));
            assert!((1..=28).contains(&p.dob.day));
        }
    }
}
