#![warn(missing_docs)]

//! # pwnd-corpus — personas and the synthetic corporate email corpus
//!
//! The paper populated each honey account with 200–300 emails from the
//! public Enron corpus, after (a) mapping Enron recipients onto fictitious
//! personas with popular first/last names, (b) replacing the company name,
//! and (c) translating timestamps so the mailbox looked recently active.
//! The Enron corpus itself is not redistributable inside this workspace,
//! so we generate an *Enron-like* corpus instead: corporate email threads
//! about an energy-trading company, with a Zipfian vocabulary whose most
//! important terms ("transfer", "company", "energy", "power", …) match the
//! right-hand column of the paper's Table 2. The TF-IDF analysis only
//! consumes token statistics, so this preserves the behaviour that matters.
//!
//! Provided here:
//!
//! * [`persona`] — fictitious account owners: popular names, date of
//!   birth, and a home city near the advertised UK/US decoy midpoints;
//! * [`email`] — the message type shared by every crate that touches mail;
//! * [`generator`] — mailbox synthesis: threads, reply chains, timestamp
//!   translation into the 90 days before the leak;
//! * [`tokenize`] — the preprocessing pipeline of §4.3.5 (≥ 5-character
//!   terms, header-word stoplist, handle stripping);
//! * [`decoy`] — optional decoy-sensitive emails (the paper's future-work
//!   seeding: fake bank credentials to attract gold diggers).

pub mod archetype;
pub mod decoy;
pub mod email;
pub mod generator;
pub mod names;
pub mod persona;
pub mod tokenize;
pub mod vocab;

pub use archetype::Archetype;
pub use email::{Email, EmailId, MailTime};
pub use generator::CorpusGenerator;
pub use persona::{DecoyRegion, Persona};
