//! The §4.3.5 preprocessing pipeline.
//!
//! Before running TF-IDF the paper "filtered out all words that have less
//! than 5 characters, and remov\[ed\] all known header-related words, for
//! instance 'delivered' and 'charset', honey email handles, and also
//! signaling information that our monitoring infrastructure introduced".
//! This module is that pipeline: a lowercasing alphabetic tokenizer, the
//! length filter, the header stoplist, and caller-supplied extra stop
//! terms (handles and monitor markers).

use std::collections::HashSet;

/// Minimum term length kept by the pipeline.
pub const MIN_TERM_LEN: usize = 5;

/// Header-related words stripped before analysis. Deliberately *excludes*
/// "transfer": the paper's Table 2 ranks `transfer` as the most important
/// corpus word, so `Content-Transfer-Encoding` fragments must be handled
/// by stripping `encoding`/`content`, not the word itself.
pub const HEADER_STOPWORDS: &[&str] = &[
    "delivered",
    "charset",
    "received",
    "content",
    "encoding",
    "boundary",
    "multipart",
    "quoted",
    "printable",
    "mailto",
    "subject",
    "message",
    "mailer",
    "precedence",
    "return",
    "sender",
];

/// A reusable tokenizer configuration.
#[derive(Clone, Debug, Default)]
pub struct Tokenizer {
    extra_stop: HashSet<String>,
}

impl Tokenizer {
    /// A tokenizer with only the built-in header stoplist.
    pub fn new() -> Tokenizer {
        Tokenizer::default()
    }

    /// Add extra stop terms: honey handles, monitor signal markers.
    /// Terms are matched lowercase.
    pub fn with_extra_stopwords<I, S>(mut self, words: I) -> Tokenizer
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for w in words {
            self.extra_stop.insert(w.as_ref().to_lowercase());
        }
        self
    }

    /// Tokenize `text` into filtered lowercase terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_ascii_alphabetic())
            .filter(|w| w.len() >= MIN_TERM_LEN)
            .map(|w| w.to_lowercase())
            .filter(|w| !HEADER_STOPWORDS.contains(&w.as_str()))
            .filter(|w| !self.extra_stop.contains(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_short_words() {
        let t = Tokenizer::new();
        let toks = t.tokenize("the cat sat on the energy market desk");
        assert_eq!(toks, vec!["energy", "market"]);
    }

    #[test]
    fn strips_header_words_but_keeps_transfer() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Content-Transfer-Encoding: quoted-printable transfer charset=utf8");
        assert_eq!(toks, vec!["transfer", "transfer"]);
    }

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        let t = Tokenizer::new();
        let toks = t.tokenize("PAYMENT!!! seller,family;bitcoin_wallet");
        assert_eq!(
            toks,
            vec!["payment", "seller", "family", "bitcoin", "wallet"]
        );
    }

    #[test]
    fn extra_stopwords_remove_handles() {
        let t = Tokenizer::new().with_extra_stopwords(["james", "smith", "honeymail"]);
        let toks = t.tokenize("james.smith@honeymail.example discussed payment");
        assert_eq!(toks, vec!["example", "discussed", "payment"]);
    }

    #[test]
    fn numbers_are_not_terms() {
        let t = Tokenizer::new();
        let toks = t.tokenize("12345 67890abcde payment99999");
        // "abcde" survives (alphabetic run of 5), digits never do.
        assert_eq!(toks, vec!["abcde", "payment"]);
    }

    #[test]
    fn empty_input_yields_no_terms() {
        assert!(Tokenizer::new().tokenize("").is_empty());
        assert!(Tokenizer::new().tokenize("a b c d").is_empty());
    }
}
