//! Vocabulary pools for the synthetic corporate corpus.
//!
//! The TF-IDF analysis of §4.3.5 (Table 2) compares term importance in
//! *all* seeded emails against term importance in the emails attackers
//! opened. Two vocabulary strata matter:
//!
//! * **Corpus-dominant terms** — the everyday business-of-energy words
//!   that dominate the whole mailbox ("transfer", "company", "energy",
//!   "power", "information", …). These must be frequent everywhere so
//!   they rank high in `TFIDF_A` (right column of Table 2).
//! * **Sensitive terms** — the financially interesting words that appear
//!   in only a few messages ("account", "payment", "seller", "family",
//!   "listed", "below", "results"). Gold diggers search for these, so
//!   they dominate the *opened* set and rank high in `TFIDF_R − TFIDF_A`
//!   (left column of Table 2). The bitcoin-family terms are deliberately
//!   absent: the paper notes they entered the opened-set only through the
//!   blackmailer's abandoned drafts, and our blackmailer case study is
//!   what introduces them.

/// Business words that dominate the corpus (each ≥ 5 characters so they
/// survive the tokenizer's length filter).
pub const CORE_BUSINESS: &[&str] = &[
    "transfer",
    "please",
    "original",
    "company",
    "would",
    "energy",
    "information",
    "about",
    "email",
    "power",
    "schedule",
    "meeting",
    "report",
    "market",
    "trading",
    "contract",
    "project",
    "quarter",
    "review",
    "attached",
    "agreement",
    "capacity",
    "delivery",
    "pipeline",
    "forecast",
    "revenue",
    "management",
    "operations",
    "customer",
    "service",
];

/// Sensitive terms that gold diggers search for. Kept rare in the corpus
/// (they appear in roughly one message in twenty) so that attacker
/// searches concentrate them in the opened set.
pub const SENSITIVE: &[&str] = &[
    "account",
    "payment",
    "seller",
    "family",
    "listed",
    "below",
    "results",
    "banking",
    "salary",
    "invoice",
    "password",
    "statement",
];

/// Generic filler vocabulary (Zipf-weighted). A mix of ≥5-char words that
/// survive tokenization and short words that exercise the length filter.
pub const FILLER: &[&str] = &[
    // Head of the Zipf distribution: short function words. The tokenizer
    // drops them (< 5 chars), which keeps the surviving content words'
    // frequencies flat — important so TF-IDF noise does not drown the
    // searched-term signal of Table 2.
    "with",
    "this",
    "that",
    "from",
    "will",
    "have",
    "been",
    "your",
    "know",
    "need",
    "good",
    "well",
    "send",
    "sent",
    "also",
    "note",
    "plan",
    "work",
    "week",
    "time",
    "next",
    "last",
    "call",
    "team",
    "desk",
    // Content fillers (≥ 5 chars, survive tokenization).
    "regarding",
    "following",
    "discussed",
    "yesterday",
    "tomorrow",
    "morning",
    "afternoon",
    "available",
    "possible",
    "question",
    "update",
    "changes",
    "numbers",
    "position",
    "group",
    "system",
    "process",
    "issues",
    "details",
    "thanks",
    "regards",
    "draft",
    "final",
    "today",
    "letter",
    "office",
    "monday",
    "friday",
    "counterparty",
    "settlement",
    "exposure",
    "curves",
    "volumes",
    "points",
    "basis",
    "storage",
];

/// Subject-line templates. `{}` slots are filled from [`CORE_BUSINESS`].
pub const SUBJECT_TEMPLATES: &[&str] = &[
    "RE: {} {} schedule",
    "FW: {} update",
    "{} {} meeting notes",
    "Q3 {} review",
    "{} agreement - draft",
    "Weekly {} report",
    "{} desk summary",
    "Action required: {} {}",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_right_column_terms_are_core() {
        // Every "common word" from the paper's Table 2 must be in the
        // corpus-dominant stratum.
        for w in [
            "transfer",
            "please",
            "original",
            "company",
            "would",
            "energy",
            "information",
            "about",
            "email",
            "power",
        ] {
            assert!(CORE_BUSINESS.contains(&w), "missing core term {w}");
        }
    }

    #[test]
    fn table2_searchable_terms_are_sensitive() {
        for w in [
            "account", "payment", "seller", "family", "listed", "below", "results",
        ] {
            assert!(SENSITIVE.contains(&w), "missing sensitive term {w}");
        }
    }

    #[test]
    fn bitcoin_terms_absent_from_corpus_vocab() {
        // The paper: "Originally, the Enron dataset had no 'bitcoin' term."
        for pool in [CORE_BUSINESS, SENSITIVE, FILLER] {
            assert!(pool.iter().all(|w| !w.contains("bitcoin")));
        }
    }

    #[test]
    fn core_terms_survive_length_filter() {
        for w in CORE_BUSINESS {
            assert!(w.len() >= 5, "{w} would be dropped by the tokenizer");
        }
        for w in SENSITIVE {
            assert!(w.len() >= 5, "{w} would be dropped by the tokenizer");
        }
    }
}
