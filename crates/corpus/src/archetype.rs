//! Persona archetypes — the §5 future-work scenario extension.
//!
//! The paper seeds generic *corporate* accounts and proposes, as future
//! work, "studying attackers who have a specific motivation, for example
//! compromising accounts that belong to political activists". An
//! archetype selects the vocabulary strata the corpus generator draws
//! from, the fictitious organization, and the sensitive terms a targeted
//! attacker would hunt for.

/// Who the honey personas pretend to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Archetype {
    /// Employees of a fictitious energy-trading company (the paper's
    /// setup; Enron-like corpus).
    #[default]
    CorporateEmployee,
    /// Members of a fictitious civil-rights campaign (the paper's
    /// proposed extension).
    Activist,
}

/// Activist-corpus dominant vocabulary (all ≥ 5 chars).
pub const ACTIVIST_CORE: &[&str] = &[
    "campaign",
    "petition",
    "protest",
    "rights",
    "organize",
    "community",
    "volunteers",
    "coalition",
    "statement",
    "press",
    "march",
    "rally",
    "freedom",
    "justice",
    "support",
    "please",
    "would",
    "about",
    "email",
    "information",
    "meeting",
    "network",
    "movement",
    "awareness",
    "solidarity",
];

/// Activist sensitive terms — what a *motivated* attacker hunts for in a
/// dissident's mailbox: identities, funders, travel, safe contacts.
pub const ACTIVIST_SENSITIVE: &[&str] = &[
    "sources",
    "donors",
    "contacts",
    "passport",
    "location",
    "journalist",
    "funding",
    "identity",
    "travel",
    "safehouse",
];

impl Archetype {
    /// The corpus-dominant vocabulary for this archetype.
    pub fn core_vocab(self) -> &'static [&'static str] {
        match self {
            Archetype::CorporateEmployee => crate::vocab::CORE_BUSINESS,
            Archetype::Activist => ACTIVIST_CORE,
        }
    }

    /// The sensitive (search-bait) vocabulary for this archetype.
    pub fn sensitive_vocab(self) -> &'static [&'static str] {
        match self {
            Archetype::CorporateEmployee => crate::vocab::SENSITIVE,
            Archetype::Activist => ACTIVIST_SENSITIVE,
        }
    }

    /// The fictitious organization name in signatures.
    pub fn organization(self) -> &'static str {
        match self {
            Archetype::CorporateEmployee => crate::names::COMPANY_NAME,
            Archetype::Activist => "Open Voices Coalition",
        }
    }

    /// The organization's mail domain for peer addresses.
    pub fn domain(self) -> &'static str {
        match self {
            Archetype::CorporateEmployee => crate::names::COMPANY_DOMAIN,
            Archetype::Activist => "openvoices.example",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_setup() {
        assert_eq!(Archetype::default(), Archetype::CorporateEmployee);
        assert_eq!(
            Archetype::CorporateEmployee.core_vocab(),
            crate::vocab::CORE_BUSINESS
        );
    }

    #[test]
    fn activist_vocab_survives_tokenizer() {
        for w in ACTIVIST_CORE.iter().chain(ACTIVIST_SENSITIVE) {
            assert!(w.len() >= 5, "{w} would be dropped");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn archetypes_have_disjoint_sensitive_strata() {
        for w in ACTIVIST_SENSITIVE {
            // "statement" is core activist vocab but corporate-sensitive;
            // the *sensitive* strata themselves must not overlap, so the
            // scenario comparison in the activist example is meaningful.
            assert!(
                !crate::vocab::SENSITIVE.contains(w),
                "{w} in both sensitive pools"
            );
        }
    }

    #[test]
    fn organizations_differ() {
        assert_ne!(
            Archetype::CorporateEmployee.organization(),
            Archetype::Activist.organization()
        );
        assert_ne!(
            Archetype::CorporateEmployee.domain(),
            Archetype::Activist.domain()
        );
    }
}
