//! Property-based tests for the corpus subsystem.

use proptest::prelude::*;
use pwnd_corpus::generator::{translate_timestamps, CorpusGenerator};
use pwnd_corpus::persona::{DecoyRegion, PersonaFactory};
use pwnd_corpus::tokenize::{Tokenizer, HEADER_STOPWORDS, MIN_TERM_LEN};
use pwnd_sim::Rng;

proptest! {
    /// Timestamp translation preserves order and lands strictly before
    /// the epoch, for any input timestamps.
    #[test]
    fn translation_preserves_order(mut ts in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..80)) {
        let out = translate_timestamps(&ts, 90.0);
        prop_assert_eq!(out.len(), ts.len());
        for t in &out {
            prop_assert!(t.0 < 0, "translated time after epoch");
            prop_assert!(t.as_days_f64() >= -91.5);
        }
        // Order preservation: sort indices by input, outputs must be
        // non-decreasing along them.
        let mut idx: Vec<usize> = (0..ts.len()).collect();
        idx.sort_by_key(|&i| ts[i]);
        for w in idx.windows(2) {
            prop_assert!(out[w[0]] <= out[w[1]]);
        }
        ts.clear(); // silence unused-mut lint path
    }

    /// Tokenizer output obeys its contract for any input: lowercase,
    /// alphabetic, ≥ MIN_TERM_LEN, no header stopwords.
    #[test]
    fn tokenizer_contract(s in ".{0,400}") {
        let toks = Tokenizer::new().tokenize(&s);
        for t in toks {
            prop_assert!(t.len() >= MIN_TERM_LEN);
            prop_assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(!HEADER_STOPWORDS.contains(&t.as_str()));
        }
    }

    /// Extra stopwords are always honoured.
    #[test]
    fn extra_stopwords_respected(word in "[a-z]{5,12}") {
        let tok = Tokenizer::new().with_extra_stopwords([word.as_str()]);
        let text = format!("{word} payment {word}");
        let toks = tok.tokenize(&text);
        prop_assert!(!toks.contains(&word));
        prop_assert!(toks.contains(&"payment".to_string()));
    }

    /// Generated mailboxes always satisfy the paper's structural
    /// invariants, for any seed.
    #[test]
    fn mailbox_invariants(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let mut factory = PersonaFactory::new();
        let owner = factory.generate(Some(DecoyRegion::Uk), &mut rng);
        let peers = factory.generate_batch(4, |_| None, &mut rng);
        let mut generator = CorpusGenerator::new();
        let mb = generator.generate_mailbox(&owner, &peers, 20, 30, &mut rng);
        prop_assert!((20..=30).contains(&mb.len()));
        let addr = owner.webmail_address();
        for w in mb.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
        for e in &mb {
            prop_assert!(e.timestamp.0 < 0);
            prop_assert!(e.from == addr || e.to.contains(&addr));
            prop_assert!(!e.subject.is_empty());
            prop_assert!(!e.body.to_lowercase().contains("enron"));
            prop_assert!(!e.body.to_lowercase().contains("bitcoin"));
        }
    }

    /// Persona generation keeps handles unique and regions consistent,
    /// for any seed.
    #[test]
    fn persona_invariants(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let mut factory = PersonaFactory::new();
        let batch = factory.generate_batch(
            30,
            |i| if i % 2 == 0 { Some(DecoyRegion::Uk) } else { Some(DecoyRegion::Us) },
            &mut rng,
        );
        let mut handles: Vec<&str> = batch.iter().map(|p| p.handle.as_str()).collect();
        handles.sort_unstable();
        handles.dedup();
        prop_assert_eq!(handles.len(), 30);
        for (i, p) in batch.iter().enumerate() {
            let expected = if i % 2 == 0 { DecoyRegion::Uk } else { DecoyRegion::Us };
            prop_assert_eq!(p.region, Some(expected));
            // The advertised city sits within the decoy radius of the
            // region midpoint (it may cross a border — Brussels is
            // within 600 km of London).
            let d = pwnd_net::geo::haversine_km(p.home_city.point, expected.midpoint());
            prop_assert!(d <= 600.0, "{} at {d} km", p.home_city.name);
        }
    }
}
