//! Property-based tests for the network substrate.

use proptest::prelude::*;
use pwnd_net::geo::{haversine_km, GeoDb, GeoPoint};
use pwnd_net::ip::AddressPlan;
use pwnd_net::tor::TorDirectory;
use pwnd_net::useragent::{parse_browser, parse_os, render_user_agent, Browser, Os};
use pwnd_sim::Rng;
use std::net::Ipv4Addr;

fn lat() -> impl Strategy<Value = f64> {
    -89.0..89.0f64
}
fn lon() -> impl Strategy<Value = f64> {
    -180.0..180.0f64
}

proptest! {
    /// Haversine is a metric (up to numerical noise): non-negative,
    /// symmetric, zero on the diagonal, triangle inequality.
    #[test]
    fn haversine_is_a_metric(la in lat(), lo in lon(), lb in lat(), ob in lon(), lc in lat(), oc in lon()) {
        let a = GeoPoint { lat: la, lon: lo };
        let b = GeoPoint { lat: lb, lon: ob };
        let c = GeoPoint { lat: lc, lon: oc };
        let ab = haversine_km(a, b);
        let ba = haversine_km(b, a);
        let ac = haversine_km(a, c);
        let cb = haversine_km(c, b);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(haversine_km(a, a) < 1e-9);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle: {ab} > {ac} + {cb}");
        // Upper bound: half the Earth's circumference.
        prop_assert!(ab <= 20_038.0);
    }

    /// Every host the plan samples maps back to its own country, and
    /// never collides with Tor or infra space.
    #[test]
    fn address_plan_roundtrips(seed in any::<u64>()) {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(seed);
        let countries = plan.countries();
        for _ in 0..16 {
            let country = *rng.choose(&countries);
            let ip = plan.sample_host(country, &mut rng);
            prop_assert_eq!(plan.country_of(ip), Some(country));
            prop_assert!(!AddressPlan::is_infra(ip));
            prop_assert!(!AddressPlan::in_tor_block(ip));
        }
    }

    /// UA render → parse is the identity on (browser, os) for all
    /// identifiable pairs.
    #[test]
    fn user_agent_roundtrip(bi in 0usize..7, oi in 0usize..5) {
        let browser = Browser::IDENTIFIABLE[bi];
        let os = Os::IDENTIFIABLE[oi];
        let ua = render_user_agent(browser, os);
        prop_assert_eq!(parse_browser(&ua), browser);
        prop_assert_eq!(parse_os(&ua), os);
    }

    /// Parsing arbitrary garbage never panics and yields *some* label.
    #[test]
    fn parser_is_total(s in ".{0,120}") {
        let _ = parse_browser(&s);
        let _ = parse_os(&s);
    }

    /// Tor exit membership is consistent: sampled exits are recognized,
    /// and arbitrary non-Tor-block addresses are not.
    #[test]
    fn tor_membership_consistent(seed in any::<u64>(), a in 1u8..170, b in any::<u8>(), c in any::<u8>(), d in 1u8..255) {
        let mut rng = Rng::seed_from(seed);
        let dir = TorDirectory::generate(64, &mut rng);
        let exit = dir.sample_exit(&mut rng);
        prop_assert!(dir.is_exit(exit));
        let outside = Ipv4Addr::new(a, b, c, d);
        prop_assert!(!dir.is_exit(outside), "{outside} misclassified");
    }
}
