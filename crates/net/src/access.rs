//! Connection-level records: what a webmail login "looks like" on the wire.
//!
//! Google labels each unique access with a cookie identifier and exposes
//! (cookie, time, geolocation, system configuration) rows on the account's
//! visitor-activity page — the exact data the paper's scrapers harvested.
//! [`ConnectionInfo`] is the client side of that row; the service adds the
//! cookie and fingerprint.

use crate::geo::GeoPoint;
use crate::useragent::ClientConfig;
use std::fmt;
use std::net::Ipv4Addr;

/// Google's per-device access cookie. One cookie ≡ one "unique access" in
/// the paper's terminology (the terms are used interchangeably in §4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CookieId(pub u64);

impl fmt::Debug for CookieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie#{:08x}", self.0)
    }
}

impl fmt::Display for CookieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Everything the service can observe about one connecting client.
#[derive(Clone, Debug)]
pub struct ConnectionInfo {
    /// Source address of the connection.
    pub ip: Ipv4Addr,
    /// The client device's cookie, if it already holds one for this
    /// service (`None` on a fresh device; the service then issues one).
    pub cookie: Option<CookieId>,
    /// The client's user-agent/system configuration.
    pub client: ClientConfig,
    /// Ground-truth location of the device. The service never sees this
    /// directly — it geolocates `ip` — but the simulator carries it so
    /// tests can verify the geolocation path.
    pub true_location: GeoPoint,
}

impl ConnectionInfo {
    /// A fresh connection without an existing cookie.
    pub fn new(ip: Ipv4Addr, client: ClientConfig, true_location: GeoPoint) -> ConnectionInfo {
        ConnectionInfo {
            ip,
            cookie: None,
            client,
            true_location,
        }
    }

    /// The same device connecting again with its issued cookie.
    pub fn with_cookie(mut self, cookie: CookieId) -> ConnectionInfo {
        self.cookie = Some(cookie);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::useragent::{Browser, Os};

    #[test]
    fn cookie_formats() {
        let c = CookieId(0xdead_beef);
        assert_eq!(format!("{c:?}"), "cookie#deadbeef");
        assert_eq!(c.to_string(), "00000000deadbeef");
    }

    #[test]
    fn connection_builder() {
        let conn = ConnectionInfo::new(
            Ipv4Addr::new(1, 2, 3, 4),
            ClientConfig::plain(Browser::Chrome, Os::Windows),
            GeoPoint { lat: 0.0, lon: 0.0 },
        );
        assert!(conn.cookie.is_none());
        let conn = conn.with_cookie(CookieId(7));
        assert_eq!(conn.cookie, Some(CookieId(7)));
    }
}
