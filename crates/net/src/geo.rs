//! World gazetteer and great-circle geometry.
//!
//! The paper computes, for every non-Tor access, the haversine distance
//! from the login's geolocated city to the advertised decoy midpoint
//! (London for UK leaks, Pontiac for US leaks) and reports the median as
//! a circle radius (Figures 6a/6b). This module supplies the coordinates:
//! a fixed gazetteer of real-world cities across ~30 countries, with
//! population-style sampling weights so attacker origins look like a
//! plausible mix of large population centres.

use pwnd_sim::Rng;

/// A latitude/longitude pair in degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance between two points, in kilometres (haversine).
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// A gazetteer city: name, ISO-3166 alpha-2 country code, coordinates, and
/// a relative sampling weight (roughly proportional to metro population).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// ISO-3166 alpha-2 country code.
    pub country: &'static str,
    /// Coordinates.
    pub point: GeoPoint,
    /// Relative sampling weight.
    pub weight: f64,
}

const fn city(name: &'static str, country: &'static str, lat: f64, lon: f64, weight: f64) -> City {
    City {
        name,
        country,
        point: GeoPoint { lat, lon },
        weight,
    }
}

/// The UK decoy midpoint advertised in location-bearing leaks: London.
pub const UK_MIDPOINT: GeoPoint = GeoPoint {
    lat: 51.5074,
    lon: -0.1278,
};

/// The US decoy midpoint advertised in location-bearing leaks: Pontiac, MI.
/// (The paper used Pontiac as the midpoint of its advertised US locations.)
pub const US_MIDPOINT: GeoPoint = GeoPoint {
    lat: 42.6389,
    lon: -83.2910,
};

/// Static gazetteer. Coordinates are real; weights are order-of-magnitude
/// metro populations. Countries were chosen to give the experiment a pool
/// comparable to the paper's "29 countries" of observed origins.
pub const CITIES: &[City] = &[
    // United Kingdom
    city("London", "GB", 51.5074, -0.1278, 9.0),
    city("Birmingham", "GB", 52.4862, -1.8904, 2.6),
    city("Manchester", "GB", 53.4808, -2.2426, 2.7),
    city("Glasgow", "GB", 55.8642, -4.2518, 1.7),
    city("Leeds", "GB", 53.8008, -1.5491, 1.9),
    // United States
    city("New York", "US", 40.7128, -74.0060, 19.0),
    city("Los Angeles", "US", 34.0522, -118.2437, 13.0),
    city("Chicago", "US", 41.8781, -87.6298, 9.5),
    city("Houston", "US", 29.7604, -95.3698, 7.0),
    city("Detroit", "US", 42.3314, -83.0458, 4.3),
    city("Pontiac", "US", 42.6389, -83.2910, 0.6),
    city("Miami", "US", 25.7617, -80.1918, 6.1),
    city("Seattle", "US", 47.6062, -122.3321, 4.0),
    city("Atlanta", "US", 33.7490, -84.3880, 6.0),
    // Western Europe
    city("Paris", "FR", 48.8566, 2.3522, 11.0),
    city("Marseille", "FR", 43.2965, 5.3698, 1.8),
    city("Berlin", "DE", 52.5200, 13.4050, 3.7),
    city("Frankfurt", "DE", 50.1109, 8.6821, 2.3),
    city("Munich", "DE", 48.1351, 11.5820, 1.5),
    city("Amsterdam", "NL", 52.3676, 4.9041, 2.4),
    city("Rotterdam", "NL", 51.9244, 4.4777, 1.0),
    city("Brussels", "BE", 50.8503, 4.3517, 2.1),
    city("Madrid", "ES", 40.4168, -3.7038, 6.6),
    city("Barcelona", "ES", 41.3851, 2.1734, 5.6),
    city("Lisbon", "PT", 38.7223, -9.1393, 2.9),
    city("Rome", "IT", 41.9028, 12.4964, 4.3),
    city("Milan", "IT", 45.4642, 9.1900, 3.2),
    city("Zurich", "CH", 47.3769, 8.5417, 1.4),
    city("Vienna", "AT", 48.2082, 16.3738, 1.9),
    city("Dublin", "IE", 53.3498, -6.2603, 1.2),
    city("Stockholm", "SE", 59.3293, 18.0686, 1.6),
    city("Oslo", "NO", 59.9139, 10.7522, 1.0),
    city("Copenhagen", "DK", 55.6761, 12.5683, 1.3),
    city("Helsinki", "FI", 60.1699, 24.9384, 1.2),
    // Eastern Europe
    city("Warsaw", "PL", 52.2297, 21.0122, 1.8),
    city("Prague", "CZ", 50.0755, 14.4378, 1.3),
    city("Budapest", "HU", 47.4979, 19.0402, 1.8),
    city("Bucharest", "RO", 44.4268, 26.1025, 1.8),
    city("Sofia", "BG", 42.6977, 23.3219, 1.2),
    city("Kyiv", "UA", 50.4501, 30.5234, 2.9),
    city("Moscow", "RU", 55.7558, 37.6173, 12.5),
    city("Saint Petersburg", "RU", 59.9311, 30.3609, 5.4),
    city("Minsk", "BY", 53.9006, 27.5590, 2.0),
    // Americas (non-US)
    city("Toronto", "CA", 43.6532, -79.3832, 6.2),
    city("Vancouver", "CA", 49.2827, -123.1207, 2.6),
    city("Mexico City", "MX", 19.4326, -99.1332, 21.0),
    city("Sao Paulo", "BR", -23.5505, -46.6333, 22.0),
    city("Rio de Janeiro", "BR", -22.9068, -43.1729, 13.0),
    city("Buenos Aires", "AR", -34.6037, -58.3816, 15.0),
    city("Bogota", "CO", 4.7110, -74.0721, 10.7),
    // Africa & Middle East
    city("Lagos", "NG", 6.5244, 3.3792, 14.0),
    city("Abuja", "NG", 9.0765, 7.3986, 3.6),
    city("Cairo", "EG", 30.0444, 31.2357, 20.0),
    city("Johannesburg", "ZA", -26.2041, 28.0473, 5.6),
    city("Casablanca", "MA", 33.5731, -7.5898, 3.7),
    city("Istanbul", "TR", 41.0082, 28.9784, 15.0),
    city("Tel Aviv", "IL", 32.0853, 34.7818, 4.0),
    city("Dubai", "AE", 25.2048, 55.2708, 3.3),
    // Asia-Pacific
    city("Mumbai", "IN", 19.0760, 72.8777, 20.0),
    city("Delhi", "IN", 28.7041, 77.1025, 29.0),
    city("Karachi", "PK", 24.8607, 67.0011, 16.0),
    city("Dhaka", "BD", 23.8103, 90.4125, 21.0),
    city("Jakarta", "ID", -6.2088, 106.8456, 10.6),
    city("Manila", "PH", 14.5995, 120.9842, 13.5),
    city("Hanoi", "VN", 21.0285, 105.8542, 8.0),
    city("Bangkok", "TH", 13.7563, 100.5018, 10.5),
    city("Kuala Lumpur", "MY", 3.1390, 101.6869, 7.6),
    city("Singapore", "SG", 1.3521, 103.8198, 5.6),
    city("Hong Kong", "HK", 22.3193, 114.1694, 7.5),
    city("Shanghai", "CN", 31.2304, 121.4737, 27.0),
    city("Beijing", "CN", 39.9042, 116.4074, 20.0),
    city("Seoul", "KR", 37.5665, 126.9780, 9.7),
    city("Tokyo", "JP", 35.6762, 139.6503, 37.0),
    city("Sydney", "AU", -33.8688, 151.2093, 5.3),
    city("Melbourne", "AU", -37.8136, 144.9631, 5.0),
];

/// A queryable view over the gazetteer with weighted sampling.
#[derive(Clone, Debug)]
pub struct GeoDb {
    cities: &'static [City],
}

impl Default for GeoDb {
    fn default() -> Self {
        Self::new()
    }
}

impl GeoDb {
    /// The built-in world gazetteer.
    pub fn new() -> GeoDb {
        GeoDb { cities: CITIES }
    }

    /// All cities.
    pub fn cities(&self) -> &'static [City] {
        self.cities
    }

    /// All cities in `country` (ISO alpha-2).
    pub fn cities_in(&self, country: &str) -> Vec<&'static City> {
        self.cities
            .iter()
            .filter(|c| c.country == country)
            .collect()
    }

    /// Number of distinct countries in the gazetteer.
    pub fn country_count(&self) -> usize {
        let mut cs: Vec<&str> = self.cities.iter().map(|c| c.country).collect();
        cs.sort_unstable();
        cs.dedup();
        cs.len()
    }

    /// Look up a city by exact name.
    pub fn by_name(&self, name: &str) -> Option<&'static City> {
        self.cities.iter().find(|c| c.name == name)
    }

    /// Sample a city worldwide, weighted by population weight.
    pub fn sample(&self, rng: &mut Rng) -> &'static City {
        let weights: Vec<f64> = self.cities.iter().map(|c| c.weight).collect();
        &self.cities[rng.choose_weighted(&weights)]
    }

    /// Sample a city within `country`, weighted. Panics if the country has
    /// no cities in the gazetteer.
    pub fn sample_in(&self, country: &str, rng: &mut Rng) -> &'static City {
        let pool = self.cities_in(country);
        assert!(!pool.is_empty(), "no cities for country {country}");
        let weights: Vec<f64> = pool.iter().map(|c| c.weight).collect();
        pool[rng.choose_weighted(&weights)]
    }

    /// Sample a city within `max_km` of `center`, weighted; falls back to
    /// the globally nearest city if none is within range.
    pub fn sample_near(&self, center: GeoPoint, max_km: f64, rng: &mut Rng) -> &'static City {
        let pool: Vec<&'static City> = self
            .cities
            .iter()
            .filter(|c| haversine_km(c.point, center) <= max_km)
            .collect();
        if pool.is_empty() {
            return self
                .cities
                .iter()
                .min_by(|a, b| {
                    haversine_km(a.point, center)
                        .partial_cmp(&haversine_km(b.point, center))
                        .expect("distances are finite")
                })
                .expect("gazetteer is non-empty");
        }
        let weights: Vec<f64> = pool.iter().map(|c| c.weight).collect();
        pool[rng.choose_weighted(&weights)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        let db = GeoDb::new();
        let london = db.by_name("London").unwrap().point;
        let paris = db.by_name("Paris").unwrap().point;
        let ny = db.by_name("New York").unwrap().point;
        // London–Paris ≈ 344 km; London–New York ≈ 5570 km.
        let lp = haversine_km(london, paris);
        let ln = haversine_km(london, ny);
        assert!((330.0..360.0).contains(&lp), "London-Paris {lp}");
        assert!((5500.0..5650.0).contains(&ln), "London-NY {ln}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_diagonal() {
        let a = GeoPoint {
            lat: 10.0,
            lon: 20.0,
        };
        let b = GeoPoint {
            lat: -33.0,
            lon: 151.0,
        };
        assert_eq!(haversine_km(a, a), 0.0);
        let d1 = haversine_km(a, b);
        let d2 = haversine_km(b, a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn midpoints_match_gazetteer() {
        let db = GeoDb::new();
        assert_eq!(db.by_name("London").unwrap().point.lat, UK_MIDPOINT.lat);
        assert_eq!(db.by_name("Pontiac").unwrap().point.lon, US_MIDPOINT.lon);
    }

    #[test]
    fn enough_countries_for_paper_scale() {
        // Paper observed accesses from 29 countries; the pool must allow that.
        assert!(GeoDb::new().country_count() >= 29);
    }

    #[test]
    fn sample_in_respects_country() {
        let db = GeoDb::new();
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(db.sample_in("GB", &mut rng).country, "GB");
        }
    }

    #[test]
    fn sample_near_respects_radius() {
        let db = GeoDb::new();
        let mut rng = Rng::seed_from(2);
        for _ in 0..200 {
            let c = db.sample_near(UK_MIDPOINT, 1000.0, &mut rng);
            assert!(haversine_km(c.point, UK_MIDPOINT) <= 1000.0, "{}", c.name);
        }
    }

    #[test]
    fn sample_near_falls_back_to_nearest() {
        let db = GeoDb::new();
        let mut rng = Rng::seed_from(3);
        // Middle of the South Atlantic with a tiny radius: no city matches.
        let remote = GeoPoint {
            lat: -40.0,
            lon: -20.0,
        };
        let c = db.sample_near(remote, 1.0, &mut rng);
        // Falls back to the nearest gazetteer city rather than panicking.
        assert!(!c.name.is_empty());
    }

    #[test]
    fn weighted_world_sampling_prefers_megacities() {
        let db = GeoDb::new();
        let mut rng = Rng::seed_from(4);
        let mut tokyo = 0;
        let mut pontiac = 0;
        for _ in 0..20_000 {
            match db.sample(&mut rng).name {
                "Tokyo" => tokyo += 1,
                "Pontiac" => pontiac += 1,
                _ => {}
            }
        }
        assert!(tokyo > pontiac * 5, "tokyo {tokyo} pontiac {pontiac}");
    }
}
