//! A Tor exit-node directory.
//!
//! 132 of the paper's 326 accesses arrived through Tor exits — including
//! 56 of the 57 malware-outlet accesses. The analysis classifies an access
//! as Tor by matching its IP against the public exit list, then removes it
//! from the location analysis (an exit node's geolocation says nothing
//! about the criminal). We model a directory of exit nodes parked in a
//! dedicated address block, weighted toward the countries that actually
//! host large exits (DE, NL, FR, US, ...).

use crate::ip::TOR_BLOCK;
use pwnd_sim::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Countries hosting exit relays, with rough consensus-weight shares.
const EXIT_COUNTRIES: &[(&str, f64)] = &[
    ("DE", 0.30),
    ("NL", 0.15),
    ("FR", 0.12),
    ("US", 0.12),
    ("SE", 0.06),
    ("CH", 0.06),
    ("RO", 0.05),
    ("GB", 0.05),
    ("AT", 0.04),
    ("FI", 0.03),
    ("CZ", 0.02),
];

/// A snapshot of the Tor exit list, queryable by IP.
#[derive(Clone, Debug)]
pub struct TorDirectory {
    exits: Vec<Ipv4Addr>,
    countries: HashMap<Ipv4Addr, &'static str>,
}

impl TorDirectory {
    /// Generate a directory of `n` exit nodes. Addresses live in the
    /// reserved [`TOR_BLOCK`] /8 so they never collide with national
    /// allocations.
    pub fn generate(n: usize, rng: &mut Rng) -> TorDirectory {
        assert!(n > 0 && n <= 60_000, "exit count out of range");
        let weights: Vec<f64> = EXIT_COUNTRIES.iter().map(|&(_, w)| w).collect();
        let mut exits = Vec::with_capacity(n);
        let mut countries = HashMap::with_capacity(n);
        let mut used = std::collections::HashSet::with_capacity(n);
        while exits.len() < n {
            let ip = Ipv4Addr::new(
                TOR_BLOCK,
                rng.below(256) as u8,
                rng.below(256) as u8,
                (1 + rng.below(254)) as u8,
            );
            if !used.insert(ip) {
                continue;
            }
            let country = EXIT_COUNTRIES[rng.choose_weighted(&weights)].0;
            countries.insert(ip, country);
            exits.push(ip);
        }
        TorDirectory { exits, countries }
    }

    /// Whether `ip` is a known exit node.
    pub fn is_exit(&self, ip: Ipv4Addr) -> bool {
        self.countries.contains_key(&ip)
    }

    /// Country hosting the exit, if `ip` is one.
    pub fn exit_country(&self, ip: Ipv4Addr) -> Option<&'static str> {
        self.countries.get(&ip).copied()
    }

    /// Sample an exit uniformly (a Tor client picks exits by bandwidth
    /// weight; uniform over our weighted-by-country pool approximates it).
    pub fn sample_exit(&self, rng: &mut Rng) -> Ipv4Addr {
        *rng.choose(&self.exits)
    }

    /// Number of exits in the directory.
    pub fn len(&self) -> usize {
        self.exits.len()
    }

    /// Whether the directory is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.exits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::AddressPlan;

    #[test]
    fn generated_exits_are_recognized() {
        let mut rng = Rng::seed_from(1);
        let dir = TorDirectory::generate(500, &mut rng);
        assert_eq!(dir.len(), 500);
        for _ in 0..100 {
            let ip = dir.sample_exit(&mut rng);
            assert!(dir.is_exit(ip));
            assert!(dir.exit_country(ip).is_some());
            assert!(AddressPlan::in_tor_block(ip));
        }
    }

    #[test]
    fn non_exits_are_rejected() {
        let mut rng = Rng::seed_from(2);
        let dir = TorDirectory::generate(100, &mut rng);
        assert!(!dir.is_exit(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(dir.exit_country(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn exits_disjoint_from_country_space() {
        let mut rng = Rng::seed_from(3);
        let dir = TorDirectory::generate(300, &mut rng);
        let plan = AddressPlan::new(&crate::geo::GeoDb::new());
        for _ in 0..100 {
            let ip = dir.sample_exit(&mut rng);
            assert_eq!(plan.country_of(ip), None);
            assert!(!AddressPlan::is_infra(ip));
        }
    }

    #[test]
    fn exit_countries_weighted_toward_de() {
        let mut rng = Rng::seed_from(4);
        let dir = TorDirectory::generate(5_000, &mut rng);
        let de = dir.countries.values().filter(|&&c| c == "DE").count();
        let cz = dir.countries.values().filter(|&&c| c == "CZ").count();
        assert!(de > cz * 5, "de {de} cz {cz}");
    }

    #[test]
    fn exits_are_unique() {
        let mut rng = Rng::seed_from(5);
        let dir = TorDirectory::generate(2_000, &mut rng);
        let mut v = dir.exits.clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 2_000);
    }
}
