//! Deterministic IPv4 address planning.
//!
//! Real geolocation works because registries allocate address blocks to
//! national ISPs. We reproduce that: every country in the gazetteer gets a
//! disjoint set of /16 blocks carved from globally-routable space, plus
//! dedicated blocks for Tor exits and the monitoring infrastructure (the
//! paper filters its own infrastructure accesses out of the dataset by IP).
//!
//! The plan is a pure function of the country list, so a given experiment
//! seed always produces the same address-to-country mapping.

use crate::geo::GeoDb;
use pwnd_sim::Rng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The /16 used by the researchers' monitoring infrastructure.
///
/// All scraper logins originate here and are filtered out of the dataset,
/// exactly as the paper removes accesses from its own infrastructure.
pub const INFRA_BLOCK: u8 = 198; // 198.51.x.x (TEST-NET-2 inspired)
/// Second octet of the infrastructure block.
pub const INFRA_BLOCK2: u8 = 51;

/// First octet of the block reserved for Tor exit nodes.
pub const TOR_BLOCK: u8 = 171;

/// Number of /16 blocks allocated per country.
const BLOCKS_PER_COUNTRY: usize = 4;

/// A deterministic mapping between countries and IPv4 /16 blocks.
#[derive(Clone, Debug)]
pub struct AddressPlan {
    /// country code -> list of (a, b) /16 prefixes.
    blocks: BTreeMap<&'static str, Vec<(u8, u8)>>,
    /// (a, b) -> country, the reverse of `blocks`.
    reverse: BTreeMap<(u8, u8), &'static str>,
}

impl AddressPlan {
    /// Build the plan for every country present in the gazetteer.
    ///
    /// Blocks are drawn from 1.0.0.0–170.255.0.0 (skipping loopback and
    /// private ranges), leaving [`TOR_BLOCK`] and [`INFRA_BLOCK`] disjoint
    /// from all country allocations.
    pub fn new(geo: &GeoDb) -> AddressPlan {
        let mut countries: Vec<&'static str> = geo.cities().iter().map(|c| c.country).collect();
        countries.sort_unstable();
        countries.dedup();

        let mut blocks = BTreeMap::new();
        let mut reverse = BTreeMap::new();
        let mut next: u32 = 0;
        let mut advance = || -> (u8, u8) {
            loop {
                let a = (1 + next / 256) as u8;
                let b = (next % 256) as u8;
                next += 1;
                // Skip loopback (127.x), private 10.x and 172.16-31.x,
                // and anything at/above the Tor block.
                let skip =
                    a == 10 || a == 127 || (a == 172 && (16..=31).contains(&b)) || a >= TOR_BLOCK;
                if !skip {
                    return (a, b);
                }
            }
        };
        for country in countries {
            let mut list = Vec::with_capacity(BLOCKS_PER_COUNTRY);
            for _ in 0..BLOCKS_PER_COUNTRY {
                let blk = advance();
                reverse.insert(blk, country);
                list.push(blk);
            }
            blocks.insert(country, list);
        }
        AddressPlan { blocks, reverse }
    }

    /// Sample a host address inside `country`. Panics if the country is not
    /// in the plan.
    pub fn sample_host(&self, country: &str, rng: &mut Rng) -> Ipv4Addr {
        let list = self
            .blocks
            .get(country)
            .unwrap_or_else(|| panic!("country {country} not in address plan"));
        let (a, b) = *rng.choose(list);
        Ipv4Addr::new(a, b, rng.below(256) as u8, (1 + rng.below(254)) as u8)
    }

    /// Country owning `ip`, if it belongs to a national allocation.
    pub fn country_of(&self, ip: Ipv4Addr) -> Option<&'static str> {
        let o = ip.octets();
        self.reverse.get(&(o[0], o[1])).copied()
    }

    /// Whether `ip` belongs to the monitoring infrastructure.
    pub fn is_infra(ip: Ipv4Addr) -> bool {
        let o = ip.octets();
        o[0] == INFRA_BLOCK && o[1] == INFRA_BLOCK2
    }

    /// Sample a monitoring-infrastructure address.
    pub fn sample_infra(rng: &mut Rng) -> Ipv4Addr {
        Ipv4Addr::new(
            INFRA_BLOCK,
            INFRA_BLOCK2,
            rng.below(4) as u8,
            (1 + rng.below(254)) as u8,
        )
    }

    /// Whether `ip` sits in the Tor exit block. (The authoritative check is
    /// [`crate::tor::TorDirectory::is_exit`]; this is the allocation-level
    /// invariant.)
    pub fn in_tor_block(ip: Ipv4Addr) -> bool {
        ip.octets()[0] == TOR_BLOCK
    }

    /// All countries in the plan, sorted.
    pub fn countries(&self) -> Vec<&'static str> {
        self.blocks.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> AddressPlan {
        AddressPlan::new(&GeoDb::new())
    }

    #[test]
    fn roundtrip_country_of_sampled_host() {
        let p = plan();
        let mut rng = Rng::seed_from(1);
        for country in p.countries() {
            for _ in 0..20 {
                let ip = p.sample_host(country, &mut rng);
                assert_eq!(p.country_of(ip), Some(country), "ip {ip}");
            }
        }
    }

    #[test]
    fn allocations_are_disjoint() {
        let p = plan();
        let mut seen = std::collections::HashSet::new();
        for country in p.countries() {
            for blk in &p.blocks[country] {
                assert!(seen.insert(*blk), "block {blk:?} allocated twice");
            }
        }
    }

    #[test]
    fn reserved_blocks_never_allocated() {
        let p = plan();
        for &(a, b) in p.reverse.keys() {
            assert_ne!(a, 10);
            assert_ne!(a, 127);
            assert!(!(a == 172 && (16..=31).contains(&b)));
            assert!(a < TOR_BLOCK);
            assert!(!(a == INFRA_BLOCK && b == INFRA_BLOCK2));
        }
    }

    #[test]
    fn infra_detection() {
        let mut rng = Rng::seed_from(2);
        let ip = AddressPlan::sample_infra(&mut rng);
        assert!(AddressPlan::is_infra(ip));
        assert!(!AddressPlan::is_infra(Ipv4Addr::new(8, 8, 8, 8)));
        assert_eq!(plan().country_of(ip), None);
    }

    #[test]
    fn plan_is_deterministic() {
        let p1 = plan();
        let p2 = plan();
        assert_eq!(p1.countries(), p2.countries());
        for c in p1.countries() {
            assert_eq!(p1.blocks[c], p2.blocks[c]);
        }
    }

    #[test]
    fn host_addresses_avoid_network_and_broadcast_last_octet() {
        let p = plan();
        let mut rng = Rng::seed_from(3);
        for _ in 0..500 {
            let ip = p.sample_host("US", &mut rng);
            let last = ip.octets()[3];
            assert!((1..=254).contains(&last));
        }
    }
}
