#![warn(missing_docs)]

//! # pwnd-net — the synthetic Internet substrate
//!
//! The paper's analyses consume five network-level signals about each
//! access to a honey account:
//!
//! 1. the **origin IP address** and the country/city Google's geolocation
//!    maps it to (Figures 6a/6b, the Cramér–von Mises test, "29 countries"),
//! 2. whether the IP is a **Tor exit node** (132 of 326 accesses),
//! 3. whether the IP appears in the **Spamhaus blacklist** (20 addresses),
//! 4. the **browser** fingerprint, including deliberately hidden/empty
//!    user agents (Figure 5a),
//! 5. the **operating system** fingerprint (Figure 5b).
//!
//! This crate models exactly that surface: a deterministic IPv4 address
//! plan partitioned per country ([`ip::AddressPlan`]), a world gazetteer
//! with great-circle distances ([`geo`]), a Tor exit directory
//! ([`tor::TorDirectory`]), a DNSBL with listing dynamics
//! ([`dnsbl::Blacklist`]), and a user-agent catalog plus the
//! server-side fingerprinting that attackers evade by presenting empty
//! user agents ([`useragent`]).
//!
//! Nothing here speaks real wire protocols; the simulation is event-level,
//! which is the level the paper's monitoring infrastructure observed.

pub mod access;
pub mod dnsbl;
pub mod geo;
pub mod geolocate;
pub mod ip;
pub mod tor;
pub mod useragent;

pub use access::{ConnectionInfo, CookieId};
pub use geo::{haversine_km, City, GeoDb, GeoPoint};
pub use geolocate::{GeoLocation, Geolocator};
pub use ip::AddressPlan;
pub use tor::TorDirectory;
pub use useragent::{Browser, ClientConfig, Fingerprint, Os};
