//! Browser/OS user agents and server-side fingerprinting.
//!
//! Figure 5 of the paper breaks accesses down by browser and operating
//! system *as fingerprinted by Google*. Two mechanisms matter:
//!
//! * the **user-agent string**, which identifies the browser — and which
//!   sophisticated attackers simply omit ("about 50% of accesses to
//!   accounts leaked through paste sites were not identifiable", and
//!   *all* malware-outlet accesses presented unknown browsers);
//! * **passive system fingerprinting** (TCP/TLS characteristics), which
//!   can often still reveal the OS even when the UA is empty — which is
//!   why the paper sees "unknown browser" accesses that nevertheless run
//!   Windows.
//!
//! [`ClientConfig`] is what an attacker *chooses*; [`Fingerprint`] is what
//! the service *observes*. The gap between the two is the evasion the
//! paper measures.

use pwnd_sim::Rng;
use std::fmt;

/// Browsers distinguished by the paper's Figure 5a.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Browser {
    /// Google Chrome.
    Chrome,
    /// Mozilla Firefox.
    Firefox,
    /// Opera.
    Opera,
    /// Microsoft Edge.
    Edge,
    /// Internet Explorer.
    Explorer,
    /// Iceweasel (Debian-branded Firefox).
    Iceweasel,
    /// Vivaldi.
    Vivaldi,
    /// Not identifiable (empty or mangled user agent).
    Unknown,
}

impl Browser {
    /// All identifiable browsers (excludes [`Browser::Unknown`]).
    pub const IDENTIFIABLE: [Browser; 7] = [
        Browser::Chrome,
        Browser::Firefox,
        Browser::Opera,
        Browser::Edge,
        Browser::Explorer,
        Browser::Iceweasel,
        Browser::Vivaldi,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Browser::Chrome => "Chrome",
            Browser::Firefox => "Firefox",
            Browser::Opera => "Opera",
            Browser::Edge => "Edge",
            Browser::Explorer => "Explorer",
            Browser::Iceweasel => "Iceweasel",
            Browser::Vivaldi => "Vivaldi",
            Browser::Unknown => "Unknown",
        }
    }
}

impl fmt::Display for Browser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Operating systems distinguished by the paper's Figure 5b.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Os {
    /// Microsoft Windows.
    Windows,
    /// Apple Mac OS X.
    MacOsX,
    /// Desktop Linux.
    Linux,
    /// Android.
    Android,
    /// Chrome OS.
    ChromeOs,
    /// Not identifiable.
    Unknown,
}

impl Os {
    /// All identifiable operating systems (excludes [`Os::Unknown`]).
    pub const IDENTIFIABLE: [Os; 5] = [
        Os::Windows,
        Os::MacOsX,
        Os::Linux,
        Os::Android,
        Os::ChromeOs,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Os::Windows => "Windows",
            Os::MacOsX => "Mac OSX",
            Os::Linux => "Linux",
            Os::Android => "Android",
            Os::ChromeOs => "Chrome OS",
            Os::Unknown => "Unknown",
        }
    }
}

impl fmt::Display for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the client actually runs and what it chooses to reveal.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientConfig {
    /// The browser the attacker actually uses.
    pub browser: Browser,
    /// The OS the attacker's machine actually runs.
    pub os: Os,
    /// Present an empty/mangled user agent to defeat UA parsing.
    pub hide_user_agent: bool,
    /// Additionally defeat passive system fingerprinting (patched network
    /// stack, anti-fingerprint browser). Rare; implies `hide_user_agent`
    /// in every profile we ship.
    pub spoof_system: bool,
}

impl ClientConfig {
    /// An ordinary, fully fingerprintable client.
    pub fn plain(browser: Browser, os: Os) -> ClientConfig {
        ClientConfig {
            browser,
            os,
            hide_user_agent: false,
            spoof_system: false,
        }
    }

    /// A stealth client: empty UA, OS still passively fingerprintable.
    pub fn stealth(browser: Browser, os: Os) -> ClientConfig {
        ClientConfig {
            browser,
            os,
            hide_user_agent: true,
            spoof_system: false,
        }
    }

    /// The user-agent string the client transmits, or `None` when hidden.
    pub fn user_agent_string(&self) -> Option<String> {
        if self.hide_user_agent {
            return None;
        }
        Some(render_user_agent(self.browser, self.os))
    }
}

/// Render a plausible user-agent string for a browser/OS pair.
pub fn render_user_agent(browser: Browser, os: Os) -> String {
    let platform = match os {
        Os::Windows => "Windows NT 6.1; Win64; x64",
        Os::MacOsX => "Macintosh; Intel Mac OS X 10_10_5",
        Os::Linux => "X11; Linux x86_64",
        Os::Android => "Linux; Android 5.1; Nexus 5 Build/LMY48B",
        Os::ChromeOs => "X11; CrOS x86_64 7262.57.0",
        Os::Unknown => "compatible",
    };
    // Every template is static text around a single platform insertion,
    // so the string is built with one exact-size allocation instead of
    // formatter machinery — this runs once per simulated connection.
    let (prefix, suffix): (&str, &str) = match browser {
        Browser::Chrome => (
            "Mozilla/5.0 (",
            ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/45.0.2454.85 Safari/537.36",
        ),
        Browser::Firefox => ("Mozilla/5.0 (", "; rv:40.0) Gecko/20100101 Firefox/40.0"),
        Browser::Opera => (
            "Mozilla/5.0 (",
            ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/45.0.2454.85 Safari/537.36 OPR/32.0.1948.25",
        ),
        Browser::Edge => (
            "Mozilla/5.0 (",
            ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/42.0.2311.135 Safari/537.36 Edge/12.10240",
        ),
        Browser::Explorer => ("Mozilla/5.0 (", "; Trident/7.0; rv:11.0) like Gecko"),
        Browser::Iceweasel => ("Mozilla/5.0 (", "; rv:38.0) Gecko/20100101 Iceweasel/38.2.1"),
        Browser::Vivaldi => (
            "Mozilla/5.0 (",
            ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/44.0.2403.155 Safari/537.36 Vivaldi/1.0.252.3",
        ),
        Browser::Unknown => return String::new(), // lint:allow(alloc-hot): an empty String never touches the heap
    };
    let mut ua = String::with_capacity(prefix.len() + platform.len() + suffix.len());
    ua.push_str(prefix);
    ua.push_str(platform);
    ua.push_str(suffix);
    ua
}

/// What the server observed about a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Browser as identified from the user-agent string.
    pub browser: Browser,
    /// OS as identified from the UA or passive fingerprinting.
    pub os: Os,
}

/// Server-side fingerprinting of a connecting client: parse the UA string
/// for the browser, fall back to passive system fingerprinting for the OS.
pub fn fingerprint(config: &ClientConfig) -> Fingerprint {
    let browser = match config.user_agent_string() {
        Some(ua) => parse_browser(&ua),
        None => Browser::Unknown,
    };
    let os = if config.spoof_system {
        Os::Unknown
    } else if let Some(ua) = config.user_agent_string() {
        parse_os(&ua)
    } else {
        // Passive fingerprinting (TCP/IP stack quirks) still reveals the
        // OS family for ordinary stacks.
        config.os
    };
    Fingerprint { browser, os }
}

/// Identify the browser from a user-agent string. Order matters: most
/// Chromium derivatives embed the `Chrome/` token, so check the
/// distinguishing tokens first, exactly like real UA parsers.
pub fn parse_browser(ua: &str) -> Browser {
    if ua.is_empty() {
        Browser::Unknown
    } else if ua.contains("Vivaldi/") {
        Browser::Vivaldi
    } else if ua.contains("OPR/") || ua.contains("Opera") {
        Browser::Opera
    } else if ua.contains("Edge/") {
        Browser::Edge
    } else if ua.contains("Trident/") || ua.contains("MSIE") {
        Browser::Explorer
    } else if ua.contains("Iceweasel/") {
        Browser::Iceweasel
    } else if ua.contains("Firefox/") {
        Browser::Firefox
    } else if ua.contains("Chrome/") {
        Browser::Chrome
    } else {
        Browser::Unknown
    }
}

/// Identify the operating system from a user-agent string.
pub fn parse_os(ua: &str) -> Os {
    if ua.is_empty() {
        Os::Unknown
    } else if ua.contains("CrOS") {
        Os::ChromeOs
    } else if ua.contains("Android") {
        Os::Android
    } else if ua.contains("Windows") {
        Os::Windows
    } else if ua.contains("Mac OS X") {
        Os::MacOsX
    } else if ua.contains("Linux") {
        Os::Linux
    } else {
        Os::Unknown
    }
}

/// Sample an ordinary consumer browser/OS pair (used for the motley
/// paste-site and forum populations of Figure 5).
pub fn sample_consumer_client(rng: &mut Rng) -> (Browser, Os) {
    let os_weights = [0.62, 0.12, 0.08, 0.15, 0.03]; // Windows, Mac, Linux, Android, CrOS
    let os = Os::IDENTIFIABLE[rng.choose_weighted(&os_weights)];
    let browser = match os {
        Os::Android | Os::ChromeOs => Browser::Chrome,
        Os::Linux => *rng.choose(&[Browser::Firefox, Browser::Chrome, Browser::Iceweasel]),
        _ => {
            let weights = [0.35, 0.35, 0.08, 0.08, 0.08, 0.0, 0.06]; // per IDENTIFIABLE order
            Browser::IDENTIFIABLE[rng.choose_weighted(&weights)]
        }
    };
    (browser, os)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_pair() {
        for &browser in &Browser::IDENTIFIABLE {
            for &os in &Os::IDENTIFIABLE {
                let ua = render_user_agent(browser, os);
                assert_eq!(parse_browser(&ua), browser, "ua {ua}");
                assert_eq!(parse_os(&ua), os, "ua {ua}");
            }
        }
    }

    #[test]
    fn hidden_ua_yields_unknown_browser_but_fingerprintable_os() {
        let cfg = ClientConfig::stealth(Browser::Firefox, Os::Windows);
        let fp = fingerprint(&cfg);
        assert_eq!(fp.browser, Browser::Unknown);
        assert_eq!(fp.os, Os::Windows);
    }

    #[test]
    fn spoofed_system_hides_everything() {
        let cfg = ClientConfig {
            browser: Browser::Chrome,
            os: Os::Linux,
            hide_user_agent: true,
            spoof_system: true,
        };
        let fp = fingerprint(&cfg);
        assert_eq!(fp.browser, Browser::Unknown);
        assert_eq!(fp.os, Os::Unknown);
    }

    #[test]
    fn plain_client_fully_identified() {
        let cfg = ClientConfig::plain(Browser::Opera, Os::MacOsX);
        let fp = fingerprint(&cfg);
        assert_eq!(fp.browser, Browser::Opera);
        assert_eq!(fp.os, Os::MacOsX);
    }

    #[test]
    fn empty_ua_parses_to_unknown() {
        assert_eq!(parse_browser(""), Browser::Unknown);
        assert_eq!(parse_os(""), Os::Unknown);
    }

    #[test]
    fn chromium_derivatives_not_misparsed_as_chrome() {
        let opera = render_user_agent(Browser::Opera, Os::Windows);
        let edge = render_user_agent(Browser::Edge, Os::Windows);
        let vivaldi = render_user_agent(Browser::Vivaldi, Os::Windows);
        assert!(opera.contains("Chrome/"));
        assert_eq!(parse_browser(&opera), Browser::Opera);
        assert!(edge.contains("Chrome/"));
        assert_eq!(parse_browser(&edge), Browser::Edge);
        assert!(vivaldi.contains("Chrome/"));
        assert_eq!(parse_browser(&vivaldi), Browser::Vivaldi);
    }

    #[test]
    fn consumer_mix_mostly_windows() {
        let mut rng = Rng::seed_from(7);
        let mut windows = 0;
        let n = 10_000;
        for _ in 0..n {
            let (_, os) = sample_consumer_client(&mut rng);
            if os == Os::Windows {
                windows += 1;
            }
        }
        // Paper: "More than 50% of computers in the three categories ran
        // on Windows."
        assert!(windows as f64 / n as f64 > 0.5);
    }

    #[test]
    fn android_uses_chrome() {
        let mut rng = Rng::seed_from(8);
        for _ in 0..1000 {
            let (b, os) = sample_consumer_client(&mut rng);
            if os == Os::Android {
                assert_eq!(b, Browser::Chrome);
            }
        }
    }
}
