//! IP geolocation as the webmail provider performs it.
//!
//! The paper reads locations off the Gmail account-activity page, i.e. it
//! sees *Google's* geolocation of the source IP, not the criminal's true
//! position. [`Geolocator`] reproduces that: country from the address
//! plan, a deterministic city within the country (a real geolocation DB
//! maps a block to one city, consistently), Tor exits resolved to their
//! host country, and the monitoring infrastructure pinned to a fixed city
//! so that the paper's "remove accesses from our infrastructure's city"
//! filter has something to act on.

use crate::geo::{City, GeoDb, GeoPoint};
use crate::ip::AddressPlan;
use crate::tor::TorDirectory;
use std::net::Ipv4Addr;

/// The city hosting the monitoring infrastructure. The paper's filter
/// removes both infra IPs and all accesses geolocated to this city.
pub const INFRA_CITY: &str = "London";

/// What the provider's geolocation database returns for one address.
#[derive(Clone, Debug, PartialEq)]
pub struct GeoLocation {
    /// ISO country code, if the block is mapped.
    pub country: Option<&'static str>,
    /// City name shown on the activity page.
    pub city: &'static str,
    /// Coordinates of that city.
    pub point: GeoPoint,
}

/// A provider-side geolocation service.
#[derive(Clone, Debug)]
pub struct Geolocator {
    plan: AddressPlan,
    geo: GeoDb,
    tor: TorDirectory,
}

impl Geolocator {
    /// Assemble from the substrate pieces.
    pub fn new(plan: AddressPlan, geo: GeoDb, tor: TorDirectory) -> Geolocator {
        Geolocator { plan, geo, tor }
    }

    /// Access to the underlying address plan.
    pub fn plan(&self) -> &AddressPlan {
        &self.plan
    }

    /// Access to the gazetteer.
    pub fn geo(&self) -> &GeoDb {
        &self.geo
    }

    /// Access to the Tor directory.
    pub fn tor(&self) -> &TorDirectory {
        &self.tor
    }

    /// Whether this address is a Tor exit.
    pub fn is_tor_exit(&self, ip: Ipv4Addr) -> bool {
        self.tor.is_exit(ip)
    }

    /// Deterministically pick the city a block geolocates to: a real geo
    /// database maps each block to one fixed city, weighted toward the
    /// large ones. We hash the /24 so hosts in one block co-locate.
    fn city_for(&self, country: &str, ip: Ipv4Addr) -> &'static City {
        let pool = self.geo.cities_in(country);
        assert!(!pool.is_empty(), "country {country} has no cities");
        let o = ip.octets();
        let h = (o[0] as u64) << 16 | (o[1] as u64) << 8 | o[2] as u64;
        // Weight by city weight using the hash as a fixed-point fraction.
        let total: f64 = pool.iter().map(|c| c.weight).sum();
        let mut target =
            (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64 * total;
        for c in &pool {
            target -= c.weight;
            if target < 0.0 {
                return c;
            }
        }
        pool[pool.len() - 1]
    }

    /// Sample a host address that geolocates to (or as near as the address
    /// plan allows to) the given city. Attackers exhibiting *location
    /// malleability* (§4.3.4) pick proxies in a target city; this is how
    /// the simulation gives them one. Rejection-samples within the city's
    /// country and falls back to the closest hit found.
    pub fn sample_host_in_city(&self, city: &City, rng: &mut pwnd_sim::Rng) -> Ipv4Addr {
        let mut best: Option<(f64, Ipv4Addr)> = None;
        for _ in 0..64 {
            let ip = self.plan.sample_host(city.country, rng);
            let loc = self.locate(ip);
            if loc.city == city.name {
                return ip;
            }
            let d = crate::geo::haversine_km(loc.point, city.point);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, ip));
            }
        }
        best.expect("at least one sample drawn").1
    }

    /// Geolocate `ip` exactly as the provider's activity page would.
    pub fn locate(&self, ip: Ipv4Addr) -> GeoLocation {
        if AddressPlan::is_infra(ip) {
            let c = self
                .geo
                .by_name(INFRA_CITY)
                .expect("infra city in gazetteer");
            return GeoLocation {
                country: Some(c.country),
                city: c.name,
                point: c.point,
            };
        }
        if let Some(country) = self.tor.exit_country(ip) {
            let c = self.city_for(country, ip);
            return GeoLocation {
                country: Some(country),
                city: c.name,
                point: c.point,
            };
        }
        match self.plan.country_of(ip) {
            Some(country) => {
                let c = self.city_for(country, ip);
                GeoLocation {
                    country: Some(country),
                    city: c.name,
                    point: c.point,
                }
            }
            None => {
                // Unmapped space: the provider shows "Unknown"; we pin the
                // coordinates to null island and no country.
                GeoLocation {
                    country: None,
                    city: "Unknown",
                    point: GeoPoint { lat: 0.0, lon: 0.0 },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_sim::Rng;

    fn locator() -> Geolocator {
        let geo = GeoDb::new();
        let plan = AddressPlan::new(&geo);
        let mut rng = Rng::seed_from(1);
        let tor = TorDirectory::generate(200, &mut rng);
        Geolocator::new(plan, geo, tor)
    }

    #[test]
    fn national_hosts_resolve_to_their_country() {
        let l = locator();
        let mut rng = Rng::seed_from(2);
        for country in ["GB", "US", "RU", "NG", "BR"] {
            let ip = l.plan().sample_host(country, &mut rng);
            let loc = l.locate(ip);
            assert_eq!(loc.country, Some(country));
            assert_ne!(loc.city, "Unknown");
        }
    }

    #[test]
    fn geolocation_is_deterministic_per_block() {
        let l = locator();
        let a = l.locate(Ipv4Addr::new(50, 1, 2, 3));
        let b = l.locate(Ipv4Addr::new(50, 1, 2, 200));
        assert_eq!(a, b, "same /24 must co-locate");
    }

    #[test]
    fn tor_exits_locate_to_exit_country() {
        let l = locator();
        let mut rng = Rng::seed_from(3);
        for _ in 0..50 {
            let ip = l.tor().sample_exit(&mut rng);
            let loc = l.locate(ip);
            assert!(l.is_tor_exit(ip));
            assert_eq!(loc.country, l.tor().exit_country(ip));
        }
    }

    #[test]
    fn infra_pins_to_infra_city() {
        let l = locator();
        let mut rng = Rng::seed_from(4);
        let ip = AddressPlan::sample_infra(&mut rng);
        let loc = l.locate(ip);
        assert_eq!(loc.city, INFRA_CITY);
    }

    #[test]
    fn sample_host_in_city_lands_in_or_near_city() {
        let l = locator();
        let mut rng = Rng::seed_from(9);
        let london = l.geo().by_name("London").unwrap();
        for _ in 0..50 {
            let ip = l.sample_host_in_city(london, &mut rng);
            let loc = l.locate(ip);
            assert_eq!(loc.country, Some("GB"));
            // Either exactly London or the nearest block the plan offers.
            let d = crate::geo::haversine_km(loc.point, london.point);
            assert!(d < 700.0, "got {} at {d} km", loc.city);
        }
    }

    #[test]
    fn unmapped_space_is_unknown() {
        let l = locator();
        // 224.x is multicast: never allocated by the plan, not Tor/infra.
        let loc = l.locate(Ipv4Addr::new(224, 0, 0, 5));
        assert_eq!(loc.country, None);
        assert_eq!(loc.city, "Unknown");
    }
}
