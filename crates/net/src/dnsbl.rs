//! A DNS blacklist (Spamhaus-style) with listing dynamics.
//!
//! The paper checked every observed origin IP against the Spamhaus
//! blacklist and found 20 hits, interpreting them as malware-infected
//! residential machines used as stepping stones. We model a blacklist
//! that (a) carries a pre-seeded population of listed residential
//! addresses and (b) lists additional addresses when abuse reports arrive
//! (e.g. an address observed emitting spam), with timestamps so analyses
//! can ask "was this IP listed at access time?".

use pwnd_sim::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Why an address was listed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListingReason {
    /// Known botnet-infected residential host (pre-seeded listings).
    InfectedHost,
    /// Observed emitting spam during the experiment.
    SpamSource,
    /// Listed exploit/proxy host.
    OpenProxy,
}

/// A single blacklist entry.
#[derive(Clone, Copy, Debug)]
pub struct Listing {
    /// When the address was listed.
    pub since: SimTime,
    /// Why it was listed.
    pub reason: ListingReason,
}

/// An append-only IP blacklist.
#[derive(Clone, Debug, Default)]
pub struct Blacklist {
    entries: HashMap<Ipv4Addr, Listing>,
}

impl Blacklist {
    /// An empty blacklist.
    pub fn new() -> Blacklist {
        Blacklist::default()
    }

    /// List `ip` at `at` for `reason`. Re-listing keeps the earliest entry
    /// (Spamhaus listings persist; the first listing time is what matters
    /// for "was it listed when we saw it").
    pub fn list(&mut self, ip: Ipv4Addr, at: SimTime, reason: ListingReason) {
        self.entries
            .entry(ip)
            .or_insert(Listing { since: at, reason });
    }

    /// Whether `ip` is listed at time `at`.
    pub fn is_listed(&self, ip: Ipv4Addr, at: SimTime) -> bool {
        self.entries.get(&ip).is_some_and(|l| l.since <= at)
    }

    /// Whether `ip` is listed at any time (the paper's post-hoc check ran
    /// once, after data collection).
    pub fn is_ever_listed(&self, ip: Ipv4Addr) -> bool {
        self.entries.contains_key(&ip)
    }

    /// The listing entry for `ip`, if any.
    pub fn entry(&self, ip: Ipv4Addr) -> Option<&Listing> {
        self.entries.get(&ip)
    }

    /// Number of listed addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no address is listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_sim::SimDuration;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(100, 0, 0, n)
    }

    #[test]
    fn listing_takes_effect_at_time() {
        let mut bl = Blacklist::new();
        let t = SimTime::ZERO + SimDuration::days(5);
        bl.list(ip(1), t, ListingReason::SpamSource);
        assert!(!bl.is_listed(ip(1), SimTime::ZERO));
        assert!(bl.is_listed(ip(1), t));
        assert!(bl.is_listed(ip(1), t + SimDuration::days(1)));
        assert!(bl.is_ever_listed(ip(1)));
    }

    #[test]
    fn relisting_keeps_earliest() {
        let mut bl = Blacklist::new();
        let t1 = SimTime::from_secs(100);
        let t2 = SimTime::from_secs(200);
        bl.list(ip(2), t1, ListingReason::InfectedHost);
        bl.list(ip(2), t2, ListingReason::SpamSource);
        let e = bl.entry(ip(2)).unwrap();
        assert_eq!(e.since, t1);
        assert_eq!(e.reason, ListingReason::InfectedHost);
        assert_eq!(bl.len(), 1);
    }

    #[test]
    fn unlisted_addresses_report_false() {
        let bl = Blacklist::new();
        assert!(!bl.is_listed(ip(3), SimTime::from_secs(1_000_000)));
        assert!(!bl.is_ever_listed(ip(3)));
        assert!(bl.is_empty());
    }
}
