//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use pwnd_sim::dist::{Exp, LogNormal, Pareto, Zipf};
use pwnd_sim::event::EventQueue;
use pwnd_sim::rng::Rng;
use pwnd_sim::time::{CalendarDate, SimDuration, SimTime};
use pwnd_telemetry::TelemetrySink;

proptest! {
    /// Popping the queue always yields non-decreasing timestamps, for any
    /// schedule order.
    #[test]
    fn queue_pops_monotonically(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal-timestamp events dequeue in scheduling order.
    #[test]
    fn queue_equal_times_fifo(n in 1usize..300) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_secs(42), i);
        }
        let mut expected = 0usize;
        while let Some((_, e)) = q.pop() {
            prop_assert_eq!(e, expected);
            expected += 1;
        }
    }

    /// The RNG stream is a pure function of the seed.
    #[test]
    fn rng_is_deterministic(seed in any::<u64>()) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `below(n)` stays in range for all n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// `range_u64` stays within its half-open bounds.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = Rng::seed_from(seed);
        let hi = lo + span;
        for _ in 0..32 {
            let v = r.range_u64(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    /// Shuffle preserves multiset contents.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in proptest::collection::vec(any::<u32>(), 0..100)) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        Rng::seed_from(seed).shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    /// Distribution samples respect their support.
    #[test]
    fn distribution_supports(seed in any::<u64>()) {
        let mut r = Rng::seed_from(seed);
        prop_assert!(Exp::new(0.5).sample(&mut r) >= 0.0);
        prop_assert!(LogNormal::new(1.0, 2.0).sample(&mut r) > 0.0);
        prop_assert!(Pareto::new(3.0, 1.2).sample(&mut r) >= 3.0);
        let z = Zipf::new(17, 1.0);
        prop_assert!(z.sample(&mut r) < 17);
    }

    /// Calendar conversion is monotone: a later day index never yields an
    /// earlier date.
    #[test]
    fn calendar_monotone(a in 0u64..3000, b in 0u64..3000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let da = CalendarDate::from_day_index(lo);
        let db = CalendarDate::from_day_index(hi);
        let key = |d: CalendarDate| (d.year, d.month, d.day);
        prop_assert!(key(da) <= key(db));
    }

    /// Consecutive day indices map to dates exactly one day apart
    /// (verified by month-length rules).
    #[test]
    fn calendar_steps_by_one_day(idx in 0u64..3000) {
        let d0 = CalendarDate::from_day_index(idx);
        let d1 = CalendarDate::from_day_index(idx + 1);
        if d1.day == d0.day + 1 {
            prop_assert_eq!((d1.year, d1.month), (d0.year, d0.month));
        } else {
            // Month (and possibly year) rolled over; the new day is 1.
            prop_assert_eq!(d1.day, 1);
            let rolled_year = d0.month == 12;
            if rolled_year {
                prop_assert_eq!((d1.year, d1.month), (d0.year + 1, 1));
            } else {
                prop_assert_eq!((d1.year, d1.month), (d0.year, d0.month + 1));
            }
        }
    }

    /// SimTime +/- duration arithmetic is consistent.
    #[test]
    fn time_add_then_subtract(base in 0u64..u32::MAX as u64, d in 0u64..u32::MAX as u64) {
        let t = SimTime::from_secs(base);
        let dur = SimDuration::from_secs(d);
        prop_assert_eq!(((t + dur) - t).as_secs(), d);
    }

    /// With telemetry attached, the dispatch counter equals the number of
    /// events actually popped, the schedule counter equals the number
    /// scheduled, and the depth high-water gauge is exactly the deepest
    /// the queue ever got (hence ≥ the final depth) — for any interleaving
    /// of schedules and pops.
    #[test]
    fn queue_telemetry_tracks_ops(ops in proptest::collection::vec((0u64..1_000, any::<bool>()), 1..200)) {
        let sink = TelemetrySink::enabled();
        let mut q = EventQueue::new().with_telemetry(sink.clone());
        let mut scheduled = 0u64;
        let mut popped = 0u64;
        let mut max_depth = 0u64;
        for &(t, push) in &ops {
            if push {
                q.schedule(SimTime::from_secs(t), ());
                scheduled += 1;
                max_depth = max_depth.max(q.len() as u64);
            } else if q.pop().is_some() {
                popped += 1;
            }
        }
        let m = sink.report().metrics;
        prop_assert_eq!(m.counter("sim.events_scheduled"), scheduled);
        prop_assert_eq!(m.counter("sim.events_dispatched"), popped);
        let high_water = m.gauge("queue.depth_high_water");
        prop_assert_eq!(high_water, max_depth);
        prop_assert!(high_water >= q.len() as u64);
    }
}
