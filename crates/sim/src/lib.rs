#![warn(missing_docs)]

//! # pwnd-sim — deterministic discrete-event simulation substrate
//!
//! Every experiment in this workspace runs on a deterministic, event-driven
//! simulation: no wall clock, no OS randomness, no global state. A full
//! seven-month honey-account deployment replays in milliseconds and is
//! bit-for-bit reproducible from a single `u64` seed.
//!
//! The crate provides four building blocks:
//!
//! * [`SimTime`] / [`SimDuration`] — a second-granularity simulation clock
//!   anchored at the experiment epoch (the paper's 25 June 2015 start date),
//!   with calendar helpers for day indices and human-readable rendering.
//! * [`rng::Rng`] — a self-contained xoshiro256++ generator. We deliberately
//!   do not depend on the `rand` crate for simulation randomness so that a
//!   seed reproduces the same world across `rand` major versions.
//! * [`dist`] — the distributions the attacker and arrival models need:
//!   exponential, log-normal, Pareto, normal, categorical, Zipf, and a
//!   non-homogeneous Poisson arrival helper.
//! * [`event::EventQueue`] — a stable priority queue of timestamped events
//!   (FIFO among equal timestamps), the heart of the experiment driver.
//! * [`intern::Interner`] — a deterministic string-interning arena
//!   (insertion-ordered `u32` symbols) that shrinks fleet-scale
//!   per-account state from owned strings to 4-byte handles.
//!
//! ## Quick example
//!
//! ```
//! use pwnd_sim::{SimTime, SimDuration, event::EventQueue, rng::Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::hours(2), "scrape");
//! q.schedule(SimTime::ZERO + SimDuration::minutes(5), "login");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "login");
//! assert_eq!(t.as_secs(), 300);
//! let jitter = rng.range_f64(0.0, 1.0);
//! assert!((0.0..1.0).contains(&jitter));
//! ```

pub mod dist;
pub mod event;
pub mod intern;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use intern::{Interner, Symbol};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
