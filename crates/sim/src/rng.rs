//! Deterministic random number generation: xoshiro256++ seeded via SplitMix64.
//!
//! We implement the generator in-crate instead of depending on `rand` so
//! that a given experiment seed reproduces the identical world regardless
//! of which `rand` major version is in the dependency tree. xoshiro256++
//! is the general-purpose generator recommended by its authors (Blackman &
//! Vigna); SplitMix64 is the canonical way to expand a 64-bit seed into the
//! 256-bit state without correlation artifacts.

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// Not cryptographically secure — it drives simulations, not key material.
/// Cloning yields an identical stream; use [`Rng::fork`] to derive an
/// independent child stream (for per-subsystem generators that must not
/// perturb each other when one subsystem draws more numbers).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's state must not be all-zero; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Derive an independent child generator. The child is seeded from the
    /// parent's next output mixed with `stream_id`, so two forks with
    /// different ids never share a stream.
    pub fn fork(&mut self, stream_id: u64) -> Rng {
        let base = self.next_u64() ^ stream_id.rotate_left(17) ^ 0xA076_1D64_78BD_642F;
        Rng::seed_from(base)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64: lo must be <= hi");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Lemire's nearly-divisionless rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform index into a slice of length `len`. Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Pick a uniformly random element of `items`. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index according to non-negative `weights` (need not sum to 1).
    /// Panics if weights are empty or sum to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "choose_weighted: weights must have a positive finite sum"
        );
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir-free partial
    /// Fisher–Yates). Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k > n");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = Rng::seed_from(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let overlap = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±5%.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut r = Rng::seed_from(21);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::seed_from(6);
        let got = r.sample_indices(100, 30);
        assert_eq!(got.len(), 30);
        let mut s = got.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 30);
        assert!(got.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }
}
