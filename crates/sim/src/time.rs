//! Simulation clock: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! Time is measured in whole seconds since the *experiment epoch*. The
//! paper's observation window ran from 25 June 2015 to 16 February 2016
//! (236 days); [`SimTime::ZERO`] corresponds to the leak day, 25 June 2015.
//! Calendar rendering is Gregorian and epoch-anchored so that dataset dumps
//! match the paper's date notation without depending on the host clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in seconds since the experiment epoch.
///
/// `SimTime` is a transparent `u64`; it orders, hashes, and copies cheaply.
/// The epoch (second 0) is 25 June 2015 00:00:00 UTC, the day the paper's
/// credentials were first leaked.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in whole seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The experiment epoch: 25 June 2015 00:00:00 UTC.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole days elapsed since the epoch (day 0 is the leak day).
    pub const fn day_index(self) -> u64 {
        self.0 / SimDuration::SECS_PER_DAY
    }

    /// Fractional days since the epoch, for plotting.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SimDuration::SECS_PER_DAY as f64
    }

    /// Seconds into the current day (0..86400).
    pub const fn second_of_day(self) -> u64 {
        self.0 % SimDuration::SECS_PER_DAY
    }

    /// Hour of the current day (0..24), useful for diurnal activity models.
    pub const fn hour_of_day(self) -> u64 {
        self.second_of_day() / 3600
    }

    /// Elapsed span since `earlier`. Saturates at zero if `earlier` is later,
    /// which keeps duration arithmetic total (the monitor occasionally
    /// observes reordered notifications).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Calendar date for this instant, anchored at 2015-06-25.
    pub fn date(self) -> CalendarDate {
        CalendarDate::from_day_index(self.day_index())
    }

    /// Saturating addition, for schedules that may overshoot the horizon.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Seconds in a day.
    pub const SECS_PER_DAY: u64 = 86_400;

    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n * 60)
    }

    /// `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3600)
    }

    /// `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * Self::SECS_PER_DAY)
    }

    /// Whole seconds in this span.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional minutes in this span.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Fractional hours in this span.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Fractional days in this span.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / Self::SECS_PER_DAY as f64
    }

    /// Construct from fractional seconds, rounding to the nearest second.
    /// Negative inputs clamp to zero (arrival samplers can produce tiny
    /// negative values through floating-point error).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration(secs.round().min(u64::MAX as f64) as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let s = self.second_of_day();
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            d.year,
            d.month,
            d.day,
            s / 3600,
            (s % 3600) / 60,
            s % 60
        )
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= SimDuration::SECS_PER_DAY {
            write!(f, "{:.1}d", self.as_days_f64())
        } else if s >= 3600 {
            write!(f, "{:.1}h", self.as_hours_f64())
        } else if s >= 60 {
            write!(f, "{:.1}m", self.as_minutes_f64())
        } else {
            write!(f, "{s}s")
        }
    }
}

/// A Gregorian calendar date, produced by [`SimTime::date`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct CalendarDate {
    /// Four-digit year.
    pub year: u32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1-based.
    pub day: u32,
}

const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

impl CalendarDate {
    /// The experiment epoch date.
    pub const EPOCH: CalendarDate = CalendarDate {
        year: 2015,
        month: 6,
        day: 25,
    };

    /// Date `day_index` whole days after the epoch (2015-06-25).
    pub fn from_day_index(day_index: u64) -> CalendarDate {
        let mut year = Self::EPOCH.year;
        let mut month = Self::EPOCH.month;
        let mut day = Self::EPOCH.day;
        let mut remaining = day_index;
        while remaining > 0 {
            let dim = if month == 2 && is_leap(year) {
                29
            } else {
                DAYS_IN_MONTH[(month - 1) as usize]
            };
            let left_in_month = (dim - day) as u64;
            if remaining > left_in_month {
                remaining -= left_in_month + 1;
                day = 1;
                month += 1;
                if month > 12 {
                    month = 1;
                    year += 1;
                }
            } else {
                day += remaining as u32;
                remaining = 0;
            }
        }
        CalendarDate { year, month, day }
    }
}

impl fmt::Display for CalendarDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_leak_day() {
        assert_eq!(SimTime::ZERO.date(), CalendarDate::EPOCH);
        assert_eq!(SimTime::ZERO.date().to_string(), "2015-06-25");
    }

    #[test]
    fn day_index_and_seconds_roundtrip() {
        let t = SimTime::from_secs(3 * 86_400 + 7_200);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t.second_of_day(), 7_200);
        assert_eq!(t.hour_of_day(), 2);
    }

    #[test]
    fn paper_observation_end_date() {
        // The paper monitored until 16 February 2016: 236 days after epoch.
        let end = SimTime::ZERO + SimDuration::days(236);
        assert_eq!(end.date().to_string(), "2016-02-16");
    }

    #[test]
    fn crosses_year_boundary() {
        // 2015-06-25 + 190 days = 2016-01-01.
        let t = SimTime::ZERO + SimDuration::days(190);
        assert_eq!(t.date().to_string(), "2016-01-01");
    }

    #[test]
    fn leap_february_2016() {
        // 2016 is a leap year; 2015-06-25 + 249 days = 2016-02-29.
        let t = SimTime::ZERO + SimDuration::days(249);
        assert_eq!(t.date().to_string(), "2016-02-29");
        let next = SimTime::ZERO + SimDuration::days(250);
        assert_eq!(next.date().to_string(), "2016-03-01");
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(50);
        assert_eq!((late - early).as_secs(), 40);
        assert_eq!((early - late).as_secs(), 0);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::minutes(2).as_secs(), 120);
        assert_eq!(SimDuration::hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::days(2).as_secs(), 172_800);
        assert_eq!(SimDuration::from_secs_f64(1.4).as_secs(), 1);
        assert_eq!(SimDuration::from_secs_f64(-3.0).as_secs(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_secs(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(30).to_string(), "30s");
        assert_eq!(SimDuration::minutes(5).to_string(), "5.0m");
        assert_eq!(SimDuration::hours(3).to_string(), "3.0h");
        assert_eq!(SimDuration::days(12).to_string(), "12.0d");
        assert_eq!(
            (SimTime::ZERO + SimDuration::hours(1)).to_string(),
            "2015-06-25 01:00:00"
        );
    }
}
