//! A stable, timestamped event queue.
//!
//! [`EventQueue`] is a binary-heap priority queue keyed by [`SimTime`] with
//! a monotonically increasing sequence number breaking ties, so that events
//! scheduled for the same instant dequeue in FIFO order. Determinism of the
//! whole simulation rests on this property: a plain `BinaryHeap` over equal
//! keys would pop in allocation-dependent order.
//!
//! The queue can carry a [`pwnd_telemetry::TelemetrySink`]:
//! every schedule and pop is counted (`sim.events_scheduled`,
//! `sim.events_dispatched`, optionally labelled by kind through
//! [`EventQueue::with_labeler`]) and the pending depth feeds the
//! `queue.depth_high_water` gauge and the `sim.queue_depth` histogram.
//! A disabled sink costs one branch per operation and never touches
//! simulation state.

use crate::time::SimTime;
use pwnd_telemetry::TelemetrySink;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: the core of the discrete-event engine.
///
/// ```
/// use pwnd_sim::{SimTime, event::EventQueue};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(10), "c");
/// q.schedule(SimTime::from_secs(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    telemetry: TelemetrySink,
    labeler: Option<fn(&E) -> &'static str>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with telemetry disabled.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            telemetry: TelemetrySink::disabled(),
            labeler: None,
        }
    }

    /// Attach a telemetry sink; subsequent operations feed
    /// `sim.events_scheduled`, `sim.events_dispatched`, and
    /// `queue.depth_high_water`.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Attach a kind-labeler: dispatch counts become
    /// `sim.events_dispatched{label}` per event kind. The queue is
    /// generic, so only the caller can name its variants.
    pub fn with_labeler(mut self, labeler: fn(&E) -> &'static str) -> Self {
        self.labeler = Some(labeler);
        self
    }

    /// Schedule `event` to fire at `at`. Events with equal timestamps fire
    /// in scheduling order.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        if self.telemetry.is_enabled() {
            self.telemetry.count("sim.events_scheduled");
            self.telemetry
                .gauge_max("queue.depth_high_water", self.heap.len() as u64);
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|e| (e.at, e.event));
        if self.telemetry.is_enabled() {
            if let Some((_, event)) = &popped {
                match self.labeler {
                    Some(label) => self
                        .telemetry
                        .count_labeled("sim.events_dispatched", label(event)),
                    None => self.telemetry.count("sim.events_dispatched"),
                }
                // Distribution of pending depth at dispatch time: the
                // high-water gauge says how bad it got, this says how
                // loaded the loop usually is.
                self.telemetry
                    .observe("sim.queue_depth", self.heap.len() as u64);
            }
        }
        popped
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(20), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "early");
        q.schedule(SimTime::from_secs(50), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "early");
        // Handler schedules a follow-up before the pending "late" event.
        q.schedule(t + SimDuration::from_secs(10), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), ());
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn telemetry_counts_schedule_dispatch_and_depth() {
        let sink = TelemetrySink::enabled();
        let mut q = EventQueue::new()
            .with_telemetry(sink.clone())
            .with_labeler(|&e: &u32| if e % 2 == 0 { "even" } else { "odd" });
        for i in 0..6u32 {
            q.schedule(SimTime::from_secs(u64::from(i)), i);
        }
        while q.pop().is_some() {}
        let m = sink.report().metrics;
        assert_eq!(m.counter("sim.events_scheduled"), 6);
        assert_eq!(m.counter("sim.events_dispatched"), 6);
        assert_eq!(m.counters["sim.events_dispatched{even}"], 3);
        assert_eq!(m.counters["sim.events_dispatched{odd}"], 3);
        assert_eq!(m.gauge("queue.depth_high_water"), 6);
        let depth = &m.histograms["sim.queue_depth"];
        assert_eq!(depth.count(), 6);
        // Depths observed post-pop: 5, 4, 3, 2, 1, 0.
        assert_eq!(depth.sum(), 15);
    }
}
