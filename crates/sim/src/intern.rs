//! String interning: deterministic, insertion-ordered symbol arena.
//!
//! A fleet-scale run holds millions of small strings — search terms,
//! addresses, user-agent labels, activity-row fields — most of them
//! drawn from a vocabulary that is tiny compared to the number of
//! occurrences. [`Interner`] stores each distinct string once and hands
//! out copyable 4-byte [`Symbol`] handles, so the hot per-account state
//! shrinks from owned `String`s to `u32`s.
//!
//! Determinism contract: symbol ids are assigned **in insertion order**
//! (the first distinct string interned is id 0, the next id 1, …), so
//! two runs that intern the same strings in the same order agree on
//! every id. There is no hashing involved anywhere — lookup uses an
//! ordered map — so ids can never depend on `RandomState` or pointer
//! values.

use std::collections::BTreeMap;
use std::sync::Arc;

/// A 4-byte handle to a string owned by an [`Interner`].
///
/// Symbols are plain indexes: they are only meaningful to the interner
/// that issued them, and resolve in O(1) via [`Interner::resolve`].
/// `Ord`/`Eq` compare ids, i.e. *insertion order*, not lexicographic
/// order — callers that need lexicographic output order must resolve
/// first (or intern in sorted order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw id (the insertion rank of the interned string).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from a raw id previously obtained via
    /// [`Symbol::id`]. The caller is responsible for pairing it with
    /// the interner that issued the id.
    pub fn from_id(id: u32) -> Symbol {
        Symbol(id)
    }
}

/// A deterministic string-interning arena.
///
/// Each distinct string is stored exactly once (a single shared
/// allocation) and identified by the [`Symbol`] equal to its insertion
/// rank. Interning the same string again is a lookup, not an
/// allocation.
///
/// ```
/// use pwnd_sim::intern::{Interner, Symbol};
///
/// let mut arena = Interner::new();
/// let payment = arena.intern("payment");
/// let invoice = arena.intern("invoice");
/// assert_eq!(payment.id(), 0); // ids follow insertion order
/// assert_eq!(invoice.id(), 1);
/// assert_eq!(arena.intern("payment"), payment); // dedup: same symbol back
/// assert_eq!(arena.resolve(payment), "payment");
/// assert_eq!(arena.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    /// Symbol id → string, in insertion order.
    strings: Vec<Arc<str>>,
    /// String → symbol id. Ordered map: no hash state, no iteration-
    /// order hazard, and `Arc<str>` keys share the `strings` allocation.
    ids: BTreeMap<Arc<str>, u32>,
}

impl Interner {
    /// An empty arena.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `text`, returning its symbol. The first call for a given
    /// string allocates and assigns the next id; later calls return the
    /// same symbol without allocating.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&id) = self.ids.get(text) {
            return Symbol(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow: > u32::MAX strings");
        let owned: Arc<str> = Arc::from(text);
        self.strings.push(Arc::clone(&owned));
        self.ids.insert(owned, id);
        Symbol(id)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not issued by this interner (id out of
    /// range).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Look up the symbol for `text` without interning it.
    pub fn lookup(&self, text: &str) -> Option<Symbol> {
        self.ids.get(text).map(|&id| Symbol(id))
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(symbol, string)` pairs in id (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }

    /// Approximate heap footprint of the arena in bytes: string bytes
    /// (counted once — the map keys share the same allocations) plus
    /// the `Vec` and map-entry bookkeeping. Used by the fleet engine's
    /// `fleet.peak_rss_proxy` accounting, which deliberately never
    /// reads the wall clock or the OS.
    pub fn heap_bytes(&self) -> usize {
        let string_bytes: usize = self.strings.iter().map(|s| s.len()).sum();
        // Per entry: one `Arc<str>` header (strong+weak counts), the
        // `Vec` slot (ptr+len), and a conservative B-tree entry cost
        // (key ptr+len, u32 value, node overhead amortized).
        let per_entry = 16 + 16 + (16 + 4 + 8);
        string_bytes + self.strings.len() * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_insertion_order() {
        let mut arena = Interner::new();
        assert_eq!(arena.intern("b").id(), 0);
        assert_eq!(arena.intern("a").id(), 1);
        assert_eq!(arena.intern("c").id(), 2);
        // Re-interning changes nothing.
        assert_eq!(arena.intern("a").id(), 1);
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut arena = Interner::new();
        let s = arena.intern("wire transfer");
        assert_eq!(arena.resolve(s), "wire transfer");
        assert_eq!(arena.lookup("wire transfer"), Some(s));
        assert_eq!(arena.lookup("absent"), None);
    }

    #[test]
    fn symbols_survive_clone() {
        let mut arena = Interner::new();
        let s = arena.intern("payment");
        let copy = arena.clone();
        assert_eq!(copy.resolve(s), "payment");
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut arena = Interner::new();
        arena.intern("z");
        arena.intern("a");
        let order: Vec<&str> = arena.iter().map(|(_, s)| s).collect();
        assert_eq!(order, vec!["z", "a"]);
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut arena = Interner::new();
        let empty = arena.heap_bytes();
        assert_eq!(empty, 0);
        arena.intern("0123456789");
        assert!(arena.heap_bytes() >= 10);
    }

    #[test]
    fn raw_id_round_trip() {
        let mut arena = Interner::new();
        let s = arena.intern("x");
        assert_eq!(Symbol::from_id(s.id()), s);
    }
}
