//! Sampling distributions used by the attacker and arrival models.
//!
//! Each distribution is a small value type with a `sample(&mut Rng)` method.
//! The set matches what the measurement literature needs: exponential
//! inter-arrivals, log-normal session lengths (durations in Figure 2 span
//! minutes to days — heavy right tail), Pareto for extreme tails, normal
//! for jitter, Zipf for vocabulary frequencies, and a thinning-based
//! non-homogeneous Poisson process for arrival-rate curves with bursts
//! (the malware resale spikes of Figure 4).

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    /// Rate parameter, must be positive.
    pub lambda: f64,
}

impl Exp {
    /// Construct from the rate. Panics on non-positive rate.
    pub fn new(lambda: f64) -> Exp {
        assert!(lambda > 0.0, "Exp rate must be positive");
        Exp { lambda }
    }

    /// Construct from the mean. Panics on non-positive mean.
    pub fn with_mean(mean: f64) -> Exp {
        Exp::new(1.0 / mean)
    }

    /// Draw a sample by inversion.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // 1 - U avoids ln(0).
        -(1.0 - rng.f64()).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal, must be non-negative.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0, "LogNormal sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Construct from a target *median* and a multiplicative spread factor
    /// (sigma of the log). `median` must be positive.
    pub fn with_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "LogNormal median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * Normal::STANDARD.sample(rng)).exp()
    }
}

/// Normal (Gaussian) distribution sampled via Box–Muller.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation, must be non-negative.
    pub sd: f64,
}

impl Normal {
    /// The standard normal N(0, 1).
    pub const STANDARD: Normal = Normal { mean: 0.0, sd: 1.0 };

    /// Construct; panics on negative standard deviation.
    pub fn new(mean: f64, sd: f64) -> Normal {
        assert!(sd >= 0.0, "Normal sd must be non-negative");
        Normal { mean, sd }
    }

    /// Draw a sample (Box–Muller, one variate per call; we discard the
    /// pair's sibling to stay stateless).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u1 = 1.0 - rng.f64();
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.sd * z
    }
}

/// Pareto (type I) distribution with scale `xm > 0` and shape `alpha > 0`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    /// Scale (minimum value).
    pub xm: f64,
    /// Shape (tail index); smaller is heavier-tailed.
    pub alpha: f64,
}

impl Pareto {
    /// Construct; panics on non-positive parameters.
    pub fn new(xm: f64, alpha: f64) -> Pareto {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "Pareto parameters must be positive"
        );
        Pareto { xm, alpha }
    }

    /// Draw a sample by inversion.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.xm / (1.0 - rng.f64()).powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Used by the corpus generator: natural-language word frequencies are
/// approximately Zipfian, which is what makes TF-IDF informative.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the CDF table for `n` ranks with exponent `s`. Panics if
    /// `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a 0-based rank (0 is the most frequent).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A non-homogeneous Poisson arrival sampler using Lewis–Shedler thinning.
///
/// `rate(t)` gives the instantaneous arrival rate (events per second) at
/// simulation time `t`; `rate_max` must upper-bound it over the horizon.
/// Used for outlet visit arrivals whose intensity decays after a leak and
/// spikes when an account batch is resold (Figure 4).
pub struct PoissonProcess<F: Fn(SimTime) -> f64> {
    rate: F,
    rate_max: f64,
}

impl<F: Fn(SimTime) -> f64> PoissonProcess<F> {
    /// Construct; panics if `rate_max` is not positive and finite.
    pub fn new(rate: F, rate_max: f64) -> Self {
        assert!(
            rate_max > 0.0 && rate_max.is_finite(),
            "rate_max must be positive and finite"
        );
        PoissonProcess { rate, rate_max }
    }

    /// Next arrival strictly after `t`, or `None` if none occurs before
    /// `horizon`.
    pub fn next_after(&self, t: SimTime, horizon: SimTime, rng: &mut Rng) -> Option<SimTime> {
        let exp = Exp::new(self.rate_max);
        let mut cur = t;
        loop {
            let step = SimDuration::from_secs_f64(exp.sample(rng).max(1.0));
            cur = cur.saturating_add(step);
            if cur >= horizon {
                return None;
            }
            let r = (self.rate)(cur);
            debug_assert!(
                r <= self.rate_max * (1.0 + 1e-9),
                "rate exceeds rate_max at {cur:?}: {r} > {}",
                self.rate_max
            );
            if rng.chance(r / self.rate_max) {
                return Some(cur);
            }
        }
    }

    /// All arrivals in `(start, horizon)`.
    pub fn sample_all(&self, start: SimTime, horizon: SimTime, rng: &mut Rng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut cur = start;
        while let Some(next) = self.next_after(cur, horizon, rng) {
            out.push(next);
            cur = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exp_mean_matches() {
        let mut rng = Rng::seed_from(1);
        let d = Exp::with_mean(5.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let m = mean_of(&samples);
        assert!((4.8..5.2).contains(&m), "mean {m}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_mean_and_sd() {
        let mut rng = Rng::seed_from(2);
        let d = Normal::new(10.0, 3.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let m = mean_of(&samples);
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64;
        assert!((9.9..10.1).contains(&m), "mean {m}");
        assert!((8.5..9.5).contains(&var), "var {var}");
    }

    #[test]
    fn lognormal_median_matches() {
        let mut rng = Rng::seed_from(3);
        let d = LogNormal::with_median(120.0, 1.0);
        let mut samples: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((110.0..130.0).contains(&median), "median {median}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng::seed_from(4);
        let d = Pareto::new(2.0, 1.5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn zipf_rank_zero_most_frequent() {
        let mut rng = Rng::seed_from(5);
        let z = Zipf::new(50, 1.1);
        let mut counts = vec![0usize; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn poisson_process_respects_horizon_and_rate() {
        let mut rng = Rng::seed_from(6);
        // Constant rate of 1 per hour over 100 days: expect ~2400 arrivals.
        let p = PoissonProcess::new(|_| 1.0 / 3600.0, 1.0 / 3600.0);
        let horizon = SimTime::ZERO + SimDuration::days(100);
        let arrivals = p.sample_all(SimTime::ZERO, horizon, &mut rng);
        assert!(
            (2200..2600).contains(&arrivals.len()),
            "arrivals {}",
            arrivals.len()
        );
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(arrivals.iter().all(|&t| t < horizon));
    }

    #[test]
    fn poisson_process_thinning_zero_rate_region() {
        let mut rng = Rng::seed_from(7);
        // Rate is zero during the first 10 days, then 10/day.
        let cutover = SimTime::ZERO + SimDuration::days(10);
        let p = PoissonProcess::new(
            move |t| {
                if t < cutover {
                    0.0
                } else {
                    10.0 / 86_400.0
                }
            },
            10.0 / 86_400.0,
        );
        let horizon = SimTime::ZERO + SimDuration::days(20);
        let arrivals = p.sample_all(SimTime::ZERO, horizon, &mut rng);
        assert!(arrivals.iter().all(|&t| t >= cutover));
        assert!((60..140).contains(&arrivals.len()), "{}", arrivals.len());
    }
}
