#![warn(missing_docs)]

//! # pwnd-telemetry — observability for the simulation stack
//!
//! The paper's contribution is *observation*: honey accounts are only as
//! good as the instrumentation watching them. This crate gives the
//! simulator the same treatment — a first-class observability layer with
//! three facets, all reached through one handle, [`TelemetrySink`]:
//!
//! 1. a **metrics registry** ([`metrics`]) of named counters, gauges,
//!    and log-bucketed histograms, optionally labelled
//!    (`webmail.logins{outcome}`, `sim.events_dispatched{kind}`, …);
//! 2. a **structured trace** ([`trace`]) of sim-time-stamped
//!    [`TraceEvent`] records in a bounded ring buffer with JSONL export;
//! 3. a **wall-clock phase profiler** ([`profile`]) of spans around the
//!    experiment's stages, rendered as a phase-time table;
//! 4. a **hierarchical span tree** ([`spantree`]) aggregating nested
//!    spans by path (`event-loop;event{kind=visit}`), with per-path
//!    wall time, entry counts, sim-time ranges, self-vs-child
//!    attribution, and a flamegraph collapsed-stack export.
//!
//! ## The zero-overhead contract
//!
//! A disabled sink (the default) holds no allocation at all: every
//! recording method is a single `Option` branch, trace-detail closures
//! are never evaluated, and span guards are empty. Crucially, telemetry
//! **never consumes simulation RNG** and never feeds back into the
//! model, so enabling or disabling it cannot change a run's outcome —
//! `crates/core` has a test proving the exported dataset is
//! byte-identical either way.
//!
//! The crate sits below `pwnd-sim` in the dependency order, so it speaks
//! raw `u64` seconds rather than `SimTime` and has no dependencies.
//!
//! ```
//! use pwnd_telemetry::TelemetrySink;
//!
//! let sink = TelemetrySink::enabled();
//! sink.count_labeled("webmail.logins", "ok");
//! sink.trace(86_400, "login", Some(3));
//! let report = sink.report();
//! assert_eq!(report.counter("webmail.logins"), 1);
//! ```

pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod sink;
pub mod spantree;
pub mod table;
pub mod trace;

pub use json::{Json, JsonError};
pub use metrics::{HistogramSummary, MetricsSnapshot};
pub use profile::PhaseSummary;
pub use report::{format_duration, TelemetryReport};
pub use sink::{SpanGuard, TelemetrySink};
pub use spantree::{SpanAttribution, SpanNode, SpanTree, SpanTreeSnapshot};
pub use table::Table;
pub use trace::TraceEvent;
