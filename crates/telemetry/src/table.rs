//! A small fixed-width table renderer, shared by the CLI (`sweep`,
//! `truth`, `--profile`) and the telemetry report so column layouts
//! stay consistent everywhere.

/// Horizontal alignment of one column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (text).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A header row plus data rows, rendered with padded columns and a
/// dashed rule under the header.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with left-aligned columns named `headers`.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Right-align every column except the first (the common
    /// label-then-numbers layout).
    pub fn numeric(mut self) -> Table {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Set one column's alignment.
    pub fn align(mut self, column: usize, align: Align) -> Table {
        self.aligns[column] = align;
        self
    }

    /// Append a data row; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "table row width must match header"
        );
        self.rows.push(row);
        self
    }

    /// Whether any data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with two-space gutters; every line ends with `\n`.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.len();
                let last = i + 1 == cells.len();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if !last {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        fmt_row(&rule, &mut out);
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(&["phase", "total"]).numeric();
        t.row(["corpus", "12"]);
        t.row(["event-loop", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "phase       total");
        assert_eq!(lines[1], "----------  -----");
        assert_eq!(lines[2], "corpus         12");
        assert_eq!(lines[3], "event-loop      3");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(["only-one"]);
    }
}
