//! The structured trace: sim-time-stamped events in a bounded ring.
//!
//! Every interesting moment of a run — a login attempt with its risk
//! verdict, a block, a hijack, a paste view, a market sale, a scrape —
//! becomes one [`TraceEvent`]. The buffer is bounded so a 236-day run
//! cannot exhaust memory; when full, the oldest events are dropped and
//! counted, never silently lost.

use crate::json::Json;
use std::borrow::Cow;

/// One traced moment of the simulation.
///
/// `kind` is a `Cow` so live instrumentation pays nothing (static
/// strings) while reports parsed back from streamed JSONL can carry
/// owned kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time, seconds since the experiment epoch.
    pub at_secs: u64,
    /// Event kind (`"login"`, `"hijack"`, `"scrape"`, …).
    pub kind: Cow<'static, str>,
    /// Account index, when the event concerns one account.
    pub account: Option<u32>,
    /// Free-form detail (outcome, outlet, counts), possibly empty.
    pub detail: String,
}

impl TraceEvent {
    /// Render as one JSON object value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("t_secs".to_string(), Json::U(self.at_secs)),
            ("kind".to_string(), Json::Str(self.kind.to_string())),
        ];
        if let Some(a) = self.account {
            fields.push(("account".to_string(), Json::U(u64::from(a))));
        }
        if !self.detail.is_empty() {
            fields.push(("detail".to_string(), Json::Str(self.detail.clone())));
        }
        Json::Obj(fields)
    }

    /// Render as one compact JSON object (one JSONL line, no newline).
    pub fn to_json_line(&self) -> String {
        self.to_json().compact()
    }

    /// Parse the [`to_json`](TraceEvent::to_json) form back.
    pub fn from_json(json: &Json) -> Result<TraceEvent, String> {
        Ok(TraceEvent {
            at_secs: json
                .get("t_secs")
                .and_then(Json::as_u64)
                .ok_or("trace event: missing t_secs")?,
            kind: Cow::Owned(
                json.get("kind")
                    .and_then(Json::as_str)
                    .ok_or("trace event: missing kind")?
                    .to_string(),
            ),
            account: json.get("account").and_then(Json::as_u64).map(|a| a as u32),
            detail: json
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

/// Bounded ring buffer of trace events.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Default trace capacity: ample for a paper run at the emission rates
/// the instrumentation uses (per-tick, not per-account, for the chatty
/// sources).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// An empty buffer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            events: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the whole buffer as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Point-in-time copy of the held events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at_secs: at,
            kind: "login".into(),
            account: Some(7),
            detail: "ok".to_string(),
        }
    }

    #[test]
    fn json_round_trips_owned_kinds() {
        let original = ev(42);
        let parsed = Json::parse(&original.to_json_line()).unwrap();
        assert_eq!(TraceEvent::from_json(&parsed).unwrap(), original);
        let bare = TraceEvent {
            at_secs: 1,
            kind: "scrape".into(),
            account: None,
            detail: String::new(),
        };
        let parsed = Json::parse(&bare.to_json_line()).unwrap();
        assert_eq!(TraceEvent::from_json(&parsed).unwrap(), bare);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut b = TraceBuffer::with_capacity(3);
        for t in 0..5 {
            b.push(ev(t));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 2);
        let ts: Vec<u64> = b.events().map(|e| e.at_secs).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_lines_carry_timestamp_and_kind() {
        let mut b = TraceBuffer::default();
        b.push(ev(42));
        b.push(TraceEvent {
            at_secs: 43,
            kind: "scrape".into(),
            account: None,
            detail: String::new(),
        });
        let jsonl = b.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"t_secs":42,"kind":"login","account":7,"detail":"ok"}"#
        );
        assert_eq!(lines[1], r#"{"t_secs":43,"kind":"scrape"}"#);
        for line in lines {
            let parsed = Json::parse(line).expect("valid json");
            assert!(parsed.get("t_secs").and_then(Json::as_u64).is_some());
            assert!(parsed.get("kind").and_then(Json::as_str).is_some());
        }
    }
}
