//! Wall-clock phase profiling.
//!
//! The experiment wraps each stage (corpus generation, leak execution,
//! the main event loop, scraping, dataset build, analysis) in a span;
//! the profiler accumulates per-phase wall time and entry counts,
//! preserving first-entry order so the report reads like the run.
//!
//! Wall-clock readings never touch simulation state, so profiling is
//! invisible to determinism — but phase timings are *excluded* from
//! snapshot equality since two identical runs still differ in wall
//! time.

use std::time::Duration;

#[derive(Clone, Debug)]
struct Phase {
    name: String,
    total: Duration,
    entries: u32,
}

/// Accumulates span durations per phase.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    phases: Vec<Phase>,
}

impl Profiler {
    /// Fold one finished span into its phase.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.record_entries(name, elapsed, 1);
    }

    /// Fold an already-aggregated phase total (from another profiler's
    /// summary) into this one — the merge primitive behind
    /// [`TelemetryReport::merge`](crate::report::TelemetryReport::merge).
    pub fn record_entries(&mut self, name: &str, elapsed: Duration, entries: u32) {
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.total += elapsed;
                p.entries += entries;
            }
            None => self.phases.push(Phase {
                name: name.to_string(), // lint:allow(alloc-hot): first sighting of a phase name only; steady state hits the in-place arm
                total: elapsed,
                entries,
            }),
        }
    }

    /// Per-phase summaries, in first-entry order.
    pub fn summaries(&self) -> Vec<PhaseSummary> {
        self.phases
            .iter()
            .map(|p| PhaseSummary {
                name: p.name.clone(),
                total: p.total,
                entries: p.entries,
            })
            .collect()
    }
}

/// Wall-clock totals for one phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Phase name (`"corpus"`, `"event-loop"`, …).
    pub name: String,
    /// Accumulated wall time across entries.
    pub total: Duration,
    /// Number of spans folded in.
    pub entries: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_first_entry_order() {
        let mut p = Profiler::default();
        p.record("corpus", Duration::from_millis(5));
        p.record("event-loop", Duration::from_millis(10));
        p.record("corpus", Duration::from_millis(7));
        let s = p.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "corpus");
        assert_eq!(s[0].total, Duration::from_millis(12));
        assert_eq!(s[0].entries, 2);
        assert_eq!(s[1].name, "event-loop");
        assert_eq!(s[1].entries, 1);
    }
}
