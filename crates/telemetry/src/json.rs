//! A small self-contained JSON tree, writer, and parser.
//!
//! The build environment has no crates.io access, so the workspace
//! serializes its export formats (the published dataset, the trace
//! JSONL) through this module instead of serde. Integers are kept
//! exact: `u64` / `i64` values round-trip without passing through
//! `f64`, which matters for 64-bit cookie identifiers. Floats are
//! written with Rust's shortest-roundtrip `Display`, so parsing
//! recovers the exact bit pattern.

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A fractional or exponent-form number.
    F(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // ---- accessors -----------------------------------------------------

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U(v) => Some(*v),
            Json::I(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric form.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U(v) => Some(*v as f64),
            Json::I(v) => Some(*v as f64),
            Json::F(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // ---- writing -------------------------------------------------------

    /// Serialize without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation (serde_json pretty style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U(v) => out.push_str(&v.to_string()),
            Json::I(v) => out.push_str(&v.to_string()),
            Json::F(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(key, out);
                    out.push_str(colon);
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    // ---- parsing -------------------------------------------------------

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

/// Shortest-roundtrip float formatting, always number-shaped (a bare
/// integer-valued float gains `.0` so it re-parses as `F`).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; fall back to null, as serde_json does.
        return "null".to_string();
    }
    let s = v.to_string();
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected \\u for low surrogate")?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_integers_exactly() {
        let v = Json::Obj(vec![
            ("cookie".to_string(), Json::U(u64::MAX)),
            ("delta".to_string(), Json::I(-42)),
        ]);
        let parsed = Json::parse(&v.compact()).unwrap();
        assert_eq!(parsed.get("cookie").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.get("delta").unwrap().as_f64(), Some(-42.0));
    }

    #[test]
    fn round_trips_floats_exactly() {
        for f in [0.1, -51.507_222, 1e-12, 3.0, f64::MAX] {
            let s = Json::F(f).compact();
            let back = Json::parse(&s).unwrap();
            assert_eq!(back.as_f64(), Some(f), "via {s}");
        }
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let s = "line1\nline2\t\"quoted\" \\slash 🦀";
        let json = Json::Str(s.to_string()).compact();
        assert_eq!(Json::parse(&json).unwrap().as_str(), Some(s));
        // Escaped input with a surrogate pair.
        let parsed = Json::parse(r#""🦀 é""#).unwrap();
        assert_eq!(parsed.as_str(), Some("🦀 é"));
    }

    #[test]
    fn pretty_matches_expected_shape() {
        let v = Json::Obj(vec![
            ("a".to_string(), Json::U(1)),
            (
                "b".to_string(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("c".to_string(), Json::Obj(vec![])),
        ]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"c\": {}\n}";
        assert_eq!(v.pretty(), expected);
        assert_eq!(Json::parse(expected).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("123 45").is_err());
    }

    #[test]
    fn parses_with_whitespace() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"x\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
    }
}
