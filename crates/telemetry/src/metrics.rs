//! The metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! Metric identity is a static name plus an optional label, so one
//! logical metric can fan out by taxonomy (`webmail.logins{ok}`,
//! `webmail.logins{blocked}`) while staying cheap to record. Everything
//! is kept in `BTreeMap`s keyed on `(name, label)` so snapshots render
//! in a stable, deterministic order.

use std::collections::BTreeMap;

/// Identity of one metric series.
pub type MetricKey = (&'static str, Option<String>);

/// Log-bucketed histogram of `u64` observations. Bucket `i` holds the
/// count of values whose bit width is `i` (i.e. values in
/// `[2^(i-1), 2^i)`, with bucket 0 reserved for zero), which spans the
/// full `u64` range in 65 buckets at a cost of one increment per
/// observation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros();
        *self.buckets.entry(bucket).or_insert(0) += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold another histogram's observations into this one. The result
    /// is identical to observing both input streams into one histogram,
    /// whatever the interleaving — the merge is order-free.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (b, c) in other.buckets() {
            *self.buckets.entry(b).or_insert(0) += c;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Summarize for reporting.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
        }
    }

    /// Raw `(bucket, count)` pairs, ascending by bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (zero when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Rebuild a histogram from its serialized parts (the inverse of
    /// reading [`buckets`](Histogram::buckets) and the accessors) —
    /// used by the telemetry JSON round trip.
    pub fn from_parts(
        buckets: impl IntoIterator<Item = (u32, u64)>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Histogram {
        Histogram {
            buckets: buckets.into_iter().collect(),
            count,
            sum,
            min,
            max,
        }
    }
}

/// Condensed view of one histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// The live registry behind an enabled sink.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl Registry {
    /// Add `n` to a counter.
    pub fn count_by(&mut self, name: &'static str, label: Option<&str>, n: u64) {
        *self
            .counters
            .entry((name, label.map(String::from)))
            .or_insert(0) += n;
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&mut self, name: &'static str, label: Option<&str>, value: u64) {
        self.gauges.insert((name, label.map(String::from)), value);
    }

    /// Raise a gauge to `value` if it is higher (high-water marks).
    pub fn gauge_max(&mut self, name: &'static str, label: Option<&str>, value: u64) {
        let slot = self
            .gauges
            .entry((name, label.map(String::from)))
            .or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, name: &'static str, label: Option<&str>, value: u64) {
        self.histograms
            .entry((name, label.map(String::from)))
            .or_default()
            .observe(value);
    }

    /// Immutable point-in-time copy.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let key = |(name, label): &MetricKey| match label {
            Some(l) => format!("{name}{{{l}}}"),
            None => (*name).to_string(),
        };
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, &v)| (key(k), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (key(k), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (key(k), h.clone()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric series, keyed by the rendered
/// `name` / `name{label}` form, in deterministic (sorted) order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges (including high-water marks).
    pub gauges: BTreeMap<String, u64>,
    /// Log-bucketed histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Sum of every counter series whose base name is `name`, labelled
    /// or not. `counter("webmail.logins")` adds `webmail.logins{ok}`,
    /// `webmail.logins{blocked}`, etc.
    pub fn counter(&self, name: &str) -> u64 {
        let labelled = format!("{name}{{");
        self.counters
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&labelled))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Value of one gauge, zero if never set.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Fold another snapshot into this one: counters and histogram
    /// observations sum, gauges keep the highest value seen (high-water
    /// semantics — the only gauge kind the workspace records). Because
    /// every combinator is commutative and associative, merging a set of
    /// per-worker snapshots yields the same result in any order.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let mut r = Registry::default();
        r.count_by("webmail.logins", Some("ok"), 2);
        r.count_by("webmail.logins", Some("blocked"), 1);
        r.count_by("webmail.logins", Some("ok"), 1);
        let s = r.snapshot();
        assert_eq!(s.counters["webmail.logins{ok}"], 3);
        assert_eq!(s.counters["webmail.logins{blocked}"], 1);
        assert_eq!(s.counter("webmail.logins"), 4);
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let mut r = Registry::default();
        r.gauge_max("queue.depth_high_water", None, 5);
        r.gauge_max("queue.depth_high_water", None, 3);
        r.gauge_max("queue.depth_high_water", None, 9);
        assert_eq!(r.snapshot().gauge("queue.depth_high_water"), 9);
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut r = Registry::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            r.observe("lat", None, v);
        }
        let s = r.snapshot();
        let h = &s.histograms["lat"];
        let buckets: Vec<(u32, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
        let sum = h.summary();
        assert_eq!(sum.count, 6);
        assert_eq!(sum.min, 0);
        assert_eq!(sum.max, 1024);
        assert!((sum.mean - 1034.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_equals_joint_observation() {
        let mut joint = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0, 3, 9, 1024] {
            joint.observe(v);
            a.observe(v);
        }
        for v in [7, 7, 2_000_000] {
            joint.observe(v);
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
        // Merging an empty histogram is a no-op either way.
        let empty = Histogram::default();
        a.merge(&empty);
        assert_eq!(a, joint);
        let mut from_empty = Histogram::default();
        from_empty.merge(&joint);
        assert_eq!(from_empty, joint);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_maxes_gauges() {
        let mut a = Registry::default();
        a.count_by("runs", None, 2);
        a.gauge_max("depth", None, 5);
        a.observe("lat", None, 4);
        let mut b = Registry::default();
        b.count_by("runs", None, 3);
        b.count_by("other", Some("x"), 1);
        b.gauge_max("depth", None, 3);
        b.observe("lat", None, 9);
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        assert_eq!(merged.counter("runs"), 5);
        assert_eq!(merged.counters["other{x}"], 1);
        assert_eq!(merged.gauge("depth"), 5);
        assert_eq!(merged.histograms["lat"].summary().count, 2);
    }

    #[test]
    fn snapshots_are_comparable() {
        let mut a = Registry::default();
        let mut b = Registry::default();
        a.count_by("x", None, 1);
        b.count_by("x", None, 1);
        assert_eq!(a.snapshot(), b.snapshot());
        b.count_by("x", None, 1);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}
