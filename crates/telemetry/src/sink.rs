//! The one handle everything instruments through.
//!
//! [`TelemetrySink`] is a cheap clonable facade over shared state. A
//! disabled sink (the [`Default`]) holds `None` — no allocation, and
//! every recording call is a single branch. An enabled sink shares one
//! `Arc<Mutex<…>>` across every subsystem of a run, so the webmail
//! service, the scraper, the leak outlets, and the event queue all feed
//! the same registry, trace, profiler, and span tree.
//!
//! ## Spans
//!
//! [`span`](TelemetrySink::span) opens a **phase span**: its wall time
//! is folded both into the flat phase profiler (keeping `--profile`
//! output and bench baselines stable) and into the hierarchical
//! [`SpanTree`] at the current nesting
//! depth. [`subspan`](TelemetrySink::subspan) and
//! [`SpanGuard::child`] open **attribution spans** that only feed the
//! tree, so sub-phase detail never perturbs the legacy phase table.
//! Guards keep a per-sink stack of open spans; a span opened while
//! another is live becomes its child in the tree.

use crate::metrics::Registry;
use crate::profile::Profiler;
use crate::report::TelemetryReport;
use crate::spantree::SpanTree;
use crate::trace::{TraceBuffer, TraceEvent};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    metrics: Registry,
    trace: TraceBuffer,
    profile: Profiler,
    spans: SpanTree,
    stack: Vec<usize>,
}

impl Inner {
    fn open_span(&mut self, parent: Option<usize>, name: &str) -> (usize, usize) {
        let node = self.spans.open(parent, name);
        self.stack.push(node);
        (node, self.stack.len() - 1)
    }
}

/// Render `name{k=v,k=v}`, or just `name` with no labels.
fn labeled_name(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string(); // lint:allow(alloc-hot): the metrics table owns its key; runs only when the sink is live
    }
    let mut out = String::with_capacity(name.len() + 8 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// Shared telemetry handle. Clones observe the same underlying state;
/// a disabled sink is a true no-op.
///
/// ```
/// use pwnd_telemetry::TelemetrySink;
///
/// let sink = TelemetrySink::enabled();
/// sink.count("logins");
/// sink.gauge_set("accounts", 100);
/// let report = sink.report();
/// assert_eq!(report.metrics.counter("logins"), 1);
/// assert_eq!(report.metrics.gauge("accounts"), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl TelemetrySink {
    /// A sink that records nothing and costs nothing.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink { inner: None }
    }

    /// A live sink with the default trace capacity.
    pub fn enabled() -> TelemetrySink {
        TelemetrySink::with_trace_capacity(crate::trace::DEFAULT_TRACE_CAPACITY)
    }

    /// A live sink holding at most `capacity` trace events.
    pub fn with_trace_capacity(capacity: usize) -> TelemetrySink {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(Inner {
                trace: TraceBuffer::with_capacity(capacity),
                ..Inner::default()
            }))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    // ---- metrics -------------------------------------------------------

    /// Increment a counter by one.
    pub fn count(&self, name: &'static str) {
        self.count_by(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn count_by(&self, name: &'static str, n: u64) {
        self.with(|i| i.metrics.count_by(name, None, n));
    }

    /// Increment a labelled counter (`name{label}`) by one.
    pub fn count_labeled(&self, name: &'static str, label: &str) {
        self.count_labeled_by(name, label, 1);
    }

    /// Increment a labelled counter by `n`.
    pub fn count_labeled_by(&self, name: &'static str, label: &str, n: u64) {
        self.with(|i| i.metrics.count_by(name, Some(label), n));
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        self.with(|i| i.metrics.gauge_set(name, None, value));
    }

    /// Raise a gauge if `value` exceeds it (high-water mark).
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        self.with(|i| i.metrics.gauge_max(name, None, value));
    }

    /// Record a histogram observation.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.with(|i| i.metrics.observe(name, None, value));
    }

    /// Record a labelled histogram observation (`name{label}`) — e.g.
    /// per-endpoint request latencies keyed by route pattern.
    pub fn observe_labeled(&self, name: &'static str, label: &str, value: u64) {
        self.with(|i| i.metrics.observe(name, Some(label), value));
    }

    // ---- trace ---------------------------------------------------------

    /// Record a trace event with no detail.
    pub fn trace(&self, at_secs: u64, kind: &'static str, account: Option<u32>) {
        self.with(|i| {
            i.trace.push(TraceEvent {
                at_secs,
                kind: kind.into(),
                account,
                detail: String::new(), // lint:allow(alloc-hot): an empty String never touches the heap
            })
        });
    }

    /// Record a trace event whose detail string is built only when the
    /// sink is enabled — disabled runs never evaluate `detail`.
    pub fn trace_with(
        &self,
        at_secs: u64,
        kind: &'static str,
        account: Option<u32>,
        detail: impl FnOnce() -> String,
    ) {
        self.with(|i| {
            i.trace.push(TraceEvent {
                at_secs,
                kind: kind.into(),
                account,
                detail: detail(),
            })
        });
    }

    // ---- profiling -----------------------------------------------------

    /// Open a wall-clock span for `phase`; the time from now until the
    /// guard drops is folded into that phase's flat total *and* into
    /// the span tree at the current nesting depth.
    pub fn span(&self, phase: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(m) => {
                // Stamp before the bookkeeping so open-path overhead
                // counts against this span, not its parent's self time.
                let started = Instant::now();
                let (node, depth) = {
                    let mut i = m.lock().unwrap_or_else(PoisonError::into_inner);
                    let parent = i.stack.last().copied();
                    i.open_span(parent, phase)
                };
                SpanGuard {
                    sink: Some(Arc::clone(m)),
                    phase: Some(phase),
                    node,
                    depth,
                    started,
                }
            }
        }
    }

    /// Open an attribution-only span under the innermost open span
    /// (or at the root if none is open). Label pairs become part of the
    /// tree path — `subspan("event", &[("kind", "visit")])` records
    /// under `…;event{kind=visit}` — and are only formatted when the
    /// sink is enabled. Unlike [`span`](TelemetrySink::span), nothing
    /// is added to the flat phase profiler.
    pub fn subspan(&self, name: &'static str, labels: &[(&str, &str)]) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(m) => {
                let started = Instant::now();
                let (node, depth) = {
                    let mut i = m.lock().unwrap_or_else(PoisonError::into_inner);
                    let parent = i.stack.last().copied();
                    if labels.is_empty() {
                        i.open_span(parent, name)
                    } else {
                        i.open_span(parent, &labeled_name(name, labels))
                    }
                };
                SpanGuard {
                    sink: Some(Arc::clone(m)),
                    phase: None,
                    node,
                    depth,
                    started,
                }
            }
        }
    }

    // ---- export --------------------------------------------------------

    /// Point-in-time report of everything recorded so far. Empty for a
    /// disabled sink.
    pub fn report(&self) -> TelemetryReport {
        self.with(|i| TelemetryReport {
            metrics: i.metrics.snapshot(),
            trace: i.trace.snapshot(),
            trace_dropped: i.trace.dropped(),
            phases: i.profile.summaries(),
            spans: i.spans.snapshot(),
        })
        .unwrap_or_default()
    }

    /// The trace as JSONL (one event per line); empty when disabled.
    pub fn trace_jsonl(&self) -> String {
        self.with(|i| i.trace.to_jsonl()).unwrap_or_default()
    }
}

/// RAII guard for one profiling span (see [`TelemetrySink::span`],
/// [`TelemetrySink::subspan`], and [`SpanGuard::child`]).
#[must_use = "a span guard records its phase when dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    sink: Option<Arc<Mutex<Inner>>>,
    /// Flat-profiler phase to credit on drop; `None` for tree-only
    /// attribution spans.
    phase: Option<&'static str>,
    node: usize,
    depth: usize,
    started: Instant,
}

impl SpanGuard {
    fn noop() -> SpanGuard {
        SpanGuard {
            sink: None,
            phase: None,
            node: 0,
            depth: 0,
            started: Instant::now(),
        }
    }

    /// Open an attribution-only span as an explicit child of this one,
    /// independent of whatever else is on the span stack. Labels join
    /// the tree path exactly as in [`TelemetrySink::subspan`].
    pub fn child(&self, name: &'static str, labels: &[(&str, &str)]) -> SpanGuard {
        match &self.sink {
            None => SpanGuard::noop(),
            Some(m) => {
                let started = Instant::now();
                let (node, depth) = {
                    let mut i = m.lock().unwrap_or_else(PoisonError::into_inner);
                    if labels.is_empty() {
                        i.open_span(Some(self.node), name)
                    } else {
                        i.open_span(Some(self.node), &labeled_name(name, labels))
                    }
                };
                SpanGuard {
                    sink: Some(Arc::clone(m)),
                    phase: None,
                    node,
                    depth,
                    started,
                }
            }
        }
    }

    /// Annotate this span (and every currently open ancestor) with a
    /// simulation timestamp, widening their sim-time ranges. Root
    /// phase spans that saw sim time emit one deterministic `span`
    /// trace event when they drop.
    pub fn sim(&self, at_secs: u64) {
        if let Some(m) = &self.sink {
            let mut i = m.lock().unwrap_or_else(PoisonError::into_inner);
            i.spans.annotate_sim(self.node, at_secs);
            let open: Vec<usize> = i.stack.to_vec();
            for idx in open {
                if idx != self.node {
                    i.spans.annotate_sim(idx, at_secs);
                }
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(m) = self.sink.take() {
            let elapsed = self.started.elapsed();
            let mut i = m.lock().unwrap_or_else(PoisonError::into_inner);
            // A guard dropped out of LIFO order (or leaked children)
            // still leaves the stack consistent: everything at or
            // above this span's depth is closed with it.
            i.stack.truncate(self.depth);
            i.spans.record(self.node, elapsed);
            if let Some(phase) = self.phase {
                i.profile.record(phase, elapsed);
            }
            // Only the deterministic facets reach the trace ring:
            // the path and the sim-time range, never wall clock.
            if self.depth == 0 && self.phase.is_some() {
                if let Some((min, max)) = i.spans.sim_range(self.node) {
                    let path = i.spans.path_of(self.node);
                    i.trace.push(TraceEvent {
                        at_secs: max,
                        kind: "span".into(),
                        account: None,
                        detail: format!("{path} sim={min}..{max}"),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_skips_closures() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.count("x");
        let mut evaluated = false;
        sink.trace_with(1, "login", None, || {
            evaluated = true;
            "detail".to_string()
        });
        assert!(!evaluated, "detail closure must not run when disabled");
        let guard = sink.span("event-loop");
        let child = guard.child("event", &[("kind", "visit")]);
        child.sim(10);
        drop(child);
        drop(guard);
        drop(sink.subspan("poll", &[]));
        let report = sink.report();
        assert!(report.metrics.counters.is_empty());
        assert!(report.trace.is_empty());
        assert!(report.phases.is_empty());
        assert!(report.spans.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let sink = TelemetrySink::enabled();
        let other = sink.clone();
        sink.count("a");
        other.count("a");
        other.count_labeled("b", "x");
        assert_eq!(sink.report().metrics.counter("a"), 2);
        assert_eq!(sink.report().metrics.counter("b"), 1);
    }

    #[test]
    fn spans_accumulate_phases() {
        let sink = TelemetrySink::enabled();
        {
            let _outer = sink.span("event-loop");
            let _inner = sink.span("scrape");
        }
        {
            let _again = sink.span("scrape");
        }
        let report = sink.report();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["scrape", "event-loop"]);
        assert_eq!(report.phases[0].entries, 2);
        // The tree keeps the two scrape contexts apart.
        let paths: Vec<&str> = report.spans.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["event-loop", "event-loop;scrape", "scrape"]);
    }

    #[test]
    fn nesting_builds_paths_and_subspans_stay_out_of_phases() {
        let sink = TelemetrySink::enabled();
        {
            let loop_span = sink.span("event-loop");
            {
                let ev = loop_span.child("event", &[("kind", "visit"), ("class", "Curious")]);
                ev.sim(120);
                drop(ev);
            }
            {
                let _ev = sink.subspan("event", &[("kind", "scrape")]);
            }
            loop_span.sim(240);
        }
        let report = sink.report();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["event-loop"], "subspans must not add phases");
        let paths: Vec<&str> = report.spans.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "event-loop",
                "event-loop;event{kind=scrape}",
                "event-loop;event{kind=visit,class=Curious}",
            ]
        );
        // `sim` on the child annotated the open ancestor too.
        let root = report.spans.node("event-loop").unwrap();
        assert_eq!((root.sim_min, root.sim_max), (Some(120), Some(240)));
        // A sim-annotated root phase span leaves one deterministic
        // trace event: path + sim range, no wall clock.
        assert_eq!(report.trace.len(), 1);
        assert_eq!(report.trace[0].kind, "span");
        assert_eq!(report.trace[0].at_secs, 240);
        assert_eq!(report.trace[0].detail, "event-loop sim=120..240");
    }

    #[test]
    fn multi_label_subspan_renders_all_pairs() {
        let sink = TelemetrySink::enabled();
        drop(sink.subspan("event", &[("kind", "visit"), ("class", "Gold Digger")]));
        let report = sink.report();
        assert_eq!(
            report.spans.nodes[0].path,
            "event{kind=visit,class=Gold Digger}"
        );
    }

    #[test]
    fn trace_round_trips_through_report() {
        let sink = TelemetrySink::enabled();
        sink.trace(100, "login", Some(4));
        sink.trace_with(200, "sale", None, || "wave=1".to_string());
        let report = sink.report();
        assert_eq!(report.trace.len(), 2);
        assert_eq!(report.trace[1].detail, "wave=1");
        assert_eq!(sink.trace_jsonl().lines().count(), 2);
    }
}
