//! The one handle everything instruments through.
//!
//! [`TelemetrySink`] is a cheap clonable facade over shared state. A
//! disabled sink (the [`Default`]) holds `None` — no allocation, and
//! every recording call is a single branch. An enabled sink shares one
//! `Arc<Mutex<…>>` across every subsystem of a run, so the webmail
//! service, the scraper, the leak outlets, and the event queue all feed
//! the same registry, trace, and profiler.

use crate::metrics::Registry;
use crate::profile::Profiler;
use crate::report::TelemetryReport;
use crate::trace::{TraceBuffer, TraceEvent};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    metrics: Registry,
    trace: TraceBuffer,
    profile: Profiler,
}

/// Shared telemetry handle. Clones observe the same underlying state;
/// a disabled sink is a true no-op.
///
/// ```
/// use pwnd_telemetry::TelemetrySink;
///
/// let sink = TelemetrySink::enabled();
/// sink.count("logins");
/// sink.gauge_set("accounts", 100);
/// let report = sink.report();
/// assert_eq!(report.metrics.counter("logins"), 1);
/// assert_eq!(report.metrics.gauge("accounts"), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl TelemetrySink {
    /// A sink that records nothing and costs nothing.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink { inner: None }
    }

    /// A live sink with the default trace capacity.
    pub fn enabled() -> TelemetrySink {
        TelemetrySink::with_trace_capacity(crate::trace::DEFAULT_TRACE_CAPACITY)
    }

    /// A live sink holding at most `capacity` trace events.
    pub fn with_trace_capacity(capacity: usize) -> TelemetrySink {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(Inner {
                trace: TraceBuffer::with_capacity(capacity),
                ..Inner::default()
            }))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    // ---- metrics -------------------------------------------------------

    /// Increment a counter by one.
    pub fn count(&self, name: &'static str) {
        self.count_by(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn count_by(&self, name: &'static str, n: u64) {
        self.with(|i| i.metrics.count_by(name, None, n));
    }

    /// Increment a labelled counter (`name{label}`) by one.
    pub fn count_labeled(&self, name: &'static str, label: &str) {
        self.count_labeled_by(name, label, 1);
    }

    /// Increment a labelled counter by `n`.
    pub fn count_labeled_by(&self, name: &'static str, label: &str, n: u64) {
        self.with(|i| i.metrics.count_by(name, Some(label), n));
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        self.with(|i| i.metrics.gauge_set(name, None, value));
    }

    /// Raise a gauge if `value` exceeds it (high-water mark).
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        self.with(|i| i.metrics.gauge_max(name, None, value));
    }

    /// Record a histogram observation.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.with(|i| i.metrics.observe(name, None, value));
    }

    // ---- trace ---------------------------------------------------------

    /// Record a trace event with no detail.
    pub fn trace(&self, at_secs: u64, kind: &'static str, account: Option<u32>) {
        self.with(|i| {
            i.trace.push(TraceEvent {
                at_secs,
                kind,
                account,
                detail: String::new(),
            })
        });
    }

    /// Record a trace event whose detail string is built only when the
    /// sink is enabled — disabled runs never evaluate `detail`.
    pub fn trace_with(
        &self,
        at_secs: u64,
        kind: &'static str,
        account: Option<u32>,
        detail: impl FnOnce() -> String,
    ) {
        self.with(|i| {
            i.trace.push(TraceEvent {
                at_secs,
                kind,
                account,
                detail: detail(),
            })
        });
    }

    // ---- profiling -----------------------------------------------------

    /// Open a wall-clock span for `phase`; the time from now until the
    /// guard drops is folded into that phase's total.
    pub fn span(&self, phase: &'static str) -> SpanGuard {
        SpanGuard {
            sink: self.inner.clone(),
            phase,
            started: Instant::now(),
        }
    }

    // ---- export --------------------------------------------------------

    /// Point-in-time report of everything recorded so far. Empty for a
    /// disabled sink.
    pub fn report(&self) -> TelemetryReport {
        self.with(|i| TelemetryReport {
            metrics: i.metrics.snapshot(),
            trace: i.trace.snapshot(),
            trace_dropped: i.trace.dropped(),
            phases: i.profile.summaries(),
        })
        .unwrap_or_default()
    }

    /// The trace as JSONL (one event per line); empty when disabled.
    pub fn trace_jsonl(&self) -> String {
        self.with(|i| i.trace.to_jsonl()).unwrap_or_default()
    }
}

/// RAII guard for one profiling span (see [`TelemetrySink::span`]).
#[must_use = "a span guard records its phase when dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    sink: Option<Arc<Mutex<Inner>>>,
    phase: &'static str,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(m) = &self.sink {
            let elapsed = self.started.elapsed();
            m.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .profile
                .record(self.phase, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_skips_closures() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.count("x");
        let mut evaluated = false;
        sink.trace_with(1, "login", None, || {
            evaluated = true;
            "detail".to_string()
        });
        assert!(!evaluated, "detail closure must not run when disabled");
        let report = sink.report();
        assert!(report.metrics.counters.is_empty());
        assert!(report.trace.is_empty());
        assert!(report.phases.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let sink = TelemetrySink::enabled();
        let other = sink.clone();
        sink.count("a");
        other.count("a");
        other.count_labeled("b", "x");
        assert_eq!(sink.report().metrics.counter("a"), 2);
        assert_eq!(sink.report().metrics.counter("b"), 1);
    }

    #[test]
    fn spans_accumulate_phases() {
        let sink = TelemetrySink::enabled();
        {
            let _outer = sink.span("event-loop");
            let _inner = sink.span("scrape");
        }
        {
            let _again = sink.span("scrape");
        }
        let report = sink.report();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["scrape", "event-loop"]);
        assert_eq!(report.phases[0].entries, 2);
    }

    #[test]
    fn trace_round_trips_through_report() {
        let sink = TelemetrySink::enabled();
        sink.trace(100, "login", Some(4));
        sink.trace_with(200, "sale", None, || "wave=1".to_string());
        let report = sink.report();
        assert_eq!(report.trace.len(), 2);
        assert_eq!(report.trace[1].detail, "wave=1");
        assert_eq!(sink.trace_jsonl().lines().count(), 2);
    }
}
