//! Point-in-time reports: what a run recorded, rendered for humans.

use crate::json::Json;
use crate::metrics::{Histogram, MetricsSnapshot};
use crate::profile::PhaseSummary;
use crate::spantree::SpanTreeSnapshot;
use crate::table::Table;
use crate::trace::TraceEvent;
use std::collections::BTreeMap;
use std::time::Duration;

/// Everything a sink recorded, frozen at one instant.
///
/// Equality compares metrics and trace only — phase timings and span
/// durations are wall clock and differ between identical runs by
/// construction. (The span tree's deterministic *structure* can be
/// compared via [`SpanTreeSnapshot::structure`].)
#[derive(Clone, Debug, Default)]
pub struct TelemetryReport {
    /// Counter / gauge / histogram snapshot.
    pub metrics: MetricsSnapshot,
    /// Trace events currently in the ring, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Trace events evicted because the ring was full.
    pub trace_dropped: u64,
    /// Wall-clock phase totals, first-entry order.
    pub phases: Vec<PhaseSummary>,
    /// Hierarchical span aggregate, sorted by path.
    pub spans: SpanTreeSnapshot,
}

impl PartialEq for TelemetryReport {
    fn eq(&self, other: &Self) -> bool {
        self.metrics == other.metrics
            && self.trace == other.trace
            && self.trace_dropped == other.trace_dropped
    }
}

/// Render a duration the way the profile tables do: seconds above 1s,
/// milliseconds above 1ms, whole microseconds below.
pub fn format_duration(d: Duration) -> String {
    fmt_duration(d)
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

impl TelemetryReport {
    /// Sum of all counter series with base name `name` (see
    /// [`MetricsSnapshot::counter`]).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Merge per-worker (or per-run) reports into one, deterministically:
    ///
    /// * **counters** and **histograms** sum (order-free combinators);
    /// * **gauges** keep the highest value (high-water semantics);
    /// * **traces** are interleaved by `(t_secs, input index)` — each
    ///   input's trace is already time-ordered, so a stable k-way merge
    ///   keyed on sim time with the submission index as tie-break gives
    ///   one canonical stream, independent of which thread ran what;
    /// * **phases** accumulate by name, ordered by first appearance
    ///   scanning inputs in submission order (phase *totals* are wall
    ///   clock and excluded from report equality, as always);
    /// * **span trees** fold by path — totals and counts add, sim
    ///   ranges widen — an order-free, associative combinator like the
    ///   metric merges.
    ///
    /// Because every rule depends only on the inputs and their submission
    /// order — never on thread scheduling — the merged report for a batch
    /// is itself a pure function of `(seeds, configs)`.
    pub fn merge(reports: &[TelemetryReport]) -> TelemetryReport {
        let mut metrics = MetricsSnapshot::default();
        let mut trace_dropped = 0u64;
        let mut profiler = crate::profile::Profiler::default();
        let mut spans = SpanTreeSnapshot::default();
        for r in reports {
            metrics.merge_from(&r.metrics);
            trace_dropped += r.trace_dropped;
            for p in &r.phases {
                profiler.record_entries(&p.name, p.total, p.entries);
            }
            spans.merge_from(&r.spans);
        }
        // Stable k-way interleave: tag with (t_secs, input index) and
        // sort; stability keeps each input's own order for equal stamps.
        let mut tagged: Vec<(u64, usize, &TraceEvent)> = Vec::new();
        for (i, r) in reports.iter().enumerate() {
            for e in &r.trace {
                tagged.push((e.at_secs, i, e));
            }
        }
        tagged.sort_by_key(|&(t, i, _)| (t, i));
        TelemetryReport {
            metrics,
            trace: tagged.into_iter().map(|(_, _, e)| e.clone()).collect(),
            trace_dropped,
            phases: profiler.summaries(),
            spans,
        }
    }

    /// The phase-time table (`--profile` output).
    pub fn phase_table(&self) -> String {
        let total: Duration = self.phases.iter().map(|p| p.total).sum();
        let mut t = Table::new(&["phase", "wall time", "share", "entries"]).numeric();
        for p in &self.phases {
            let share = if total.is_zero() {
                0.0
            } else {
                100.0 * p.total.as_secs_f64() / total.as_secs_f64()
            };
            t.row([
                p.name.clone(),
                fmt_duration(p.total),
                format!("{share:.1}%"),
                p.entries.to_string(),
            ]);
        }
        t.row([
            "total".to_string(),
            fmt_duration(total),
            String::new(),
            String::new(),
        ]);
        t.render()
    }

    /// The metrics summary: counters, gauges, then histograms.
    pub fn metrics_table(&self) -> String {
        let mut out = String::new();
        if !self.metrics.counters.is_empty() {
            let mut t = Table::new(&["counter", "value"]).numeric();
            for (k, v) in &self.metrics.counters {
                t.row([k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.metrics.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(&["gauge", "value"]).numeric();
            for (k, v) in &self.metrics.gauges {
                t.row([k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.metrics.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(&["histogram", "count", "min", "mean", "max"]).numeric();
            for (k, h) in &self.metrics.histograms {
                let s = h.summary();
                t.row([
                    k.clone(),
                    s.count.to_string(),
                    s.min.to_string(),
                    format!("{:.1}", s.mean),
                    s.max.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// The per-phase attribution breakdown (`pwnd profile` output):
    /// for each flat phase that appears in the span tree, how much of
    /// its wall time named child spans account for.
    pub fn attribution_table(&self) -> String {
        let mut t = Table::new(&["phase", "total", "attributed", "self", "coverage"]).numeric();
        for p in &self.phases {
            let Some(attr) = self.spans.attribution(&p.name) else {
                continue;
            };
            t.row([
                p.name.clone(),
                fmt_duration(attr.total),
                fmt_duration(attr.children),
                fmt_duration(attr.total.saturating_sub(attr.children)),
                format!("{:.1}%", 100.0 * attr.coverage()),
            ]);
        }
        t.render()
    }

    /// The top-spans table, sorted by total time descending; `limit`
    /// bounds the rows (0 = all).
    pub fn span_table(&self, limit: usize) -> String {
        self.spans.top_spans_table(limit)
    }

    /// JSON form of the whole report (durations in nanoseconds). The
    /// inverse of [`from_json`](TelemetryReport::from_json).
    pub fn to_json(&self) -> Json {
        let metric_map = |m: &BTreeMap<String, u64>| {
            Json::Obj(m.iter().map(|(k, &v)| (k.clone(), Json::U(v))).collect())
        };
        let histograms = Json::Obj(
            self.metrics
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            (
                                "buckets".to_string(),
                                Json::Arr(
                                    h.buckets()
                                        .map(|(b, c)| {
                                            Json::Arr(vec![Json::U(u64::from(b)), Json::U(c)])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("count".to_string(), Json::U(h.count())),
                            ("sum".to_string(), Json::U(h.sum())),
                            ("min".to_string(), Json::U(h.min())),
                            ("max".to_string(), Json::U(h.max())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str("pwnd-telemetry/1".to_string()),
            ),
            ("counters".to_string(), metric_map(&self.metrics.counters)),
            ("gauges".to_string(), metric_map(&self.metrics.gauges)),
            ("histograms".to_string(), histograms),
            (
                "trace".to_string(),
                Json::Arr(self.trace.iter().map(TraceEvent::to_json).collect()),
            ),
            ("trace_dropped".to_string(), Json::U(self.trace_dropped)),
            (
                "phases".to_string(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(p.name.clone())),
                                ("total_ns".to_string(), Json::U(p.total.as_nanos() as u64)),
                                ("entries".to_string(), Json::U(u64::from(p.entries))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("spans".to_string(), self.spans.to_json()),
        ])
    }

    /// Render as one compact JSON line — the fleet `--telemetry-out`
    /// stream format (one report per shard, one line per report).
    pub fn to_json_line(&self) -> String {
        self.to_json().compact()
    }

    /// Parse a [`to_json`](TelemetryReport::to_json) value back into a
    /// report. Round trip is exact: the reparsed report is `==` the
    /// original and has the same phases and span tree.
    pub fn from_json(json: &Json) -> Result<TelemetryReport, String> {
        let metric_map = |field: &str| -> Result<BTreeMap<String, u64>, String> {
            match json.get(field) {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|v| (k.clone(), v))
                            .ok_or_else(|| format!("{field}.{k}: expected integer"))
                    })
                    .collect(),
                None => Ok(BTreeMap::new()),
                Some(_) => Err(format!("{field}: expected object")),
            }
        };
        let mut histograms = BTreeMap::new();
        if let Some(Json::Obj(fields)) = json.get("histograms") {
            for (k, v) in fields {
                let part = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("histograms.{k}: missing {name}"))
                };
                let mut buckets = Vec::new();
                for pair in v
                    .get("buckets")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("histograms.{k}: missing buckets"))?
                {
                    let pair = pair.as_array().ok_or("histogram bucket: expected pair")?;
                    match (
                        pair.first().and_then(Json::as_u64),
                        pair.get(1).and_then(Json::as_u64),
                    ) {
                        (Some(b), Some(c)) => buckets.push((b as u32, c)),
                        _ => return Err("histogram bucket: expected two integers".into()),
                    }
                }
                histograms.insert(
                    k.clone(),
                    Histogram::from_parts(
                        buckets,
                        part("count")?,
                        part("sum")?,
                        part("min")?,
                        part("max")?,
                    ),
                );
            }
        }
        let mut trace = Vec::new();
        if let Some(arr) = json.get("trace").and_then(Json::as_array) {
            for e in arr {
                trace.push(TraceEvent::from_json(e)?);
            }
        }
        let mut phases = Vec::new();
        if let Some(arr) = json.get("phases").and_then(Json::as_array) {
            for p in arr {
                phases.push(PhaseSummary {
                    name: p
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("phase: missing name")?
                        .to_string(),
                    total: Duration::from_nanos(
                        p.get("total_ns")
                            .and_then(Json::as_u64)
                            .ok_or("phase: missing total_ns")?,
                    ),
                    entries: p
                        .get("entries")
                        .and_then(Json::as_u64)
                        .ok_or("phase: missing entries")? as u32,
                });
            }
        }
        let spans = match json.get("spans") {
            Some(s) => SpanTreeSnapshot::from_json(s)?,
            None => SpanTreeSnapshot::default(),
        };
        Ok(TelemetryReport {
            metrics: MetricsSnapshot {
                counters: metric_map("counters")?,
                gauges: metric_map("gauges")?,
                histograms,
            },
            trace,
            trace_dropped: json
                .get("trace_dropped")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            phases,
            spans,
        })
    }

    /// Parse one streamed JSONL line back into a report.
    pub fn from_json_line(line: &str) -> Result<TelemetryReport, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        TelemetryReport::from_json(&json)
    }

    /// Full human-readable rendering: phases, metrics, trace volume.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.phases.is_empty() {
            out.push_str(&self.phase_table());
            out.push('\n');
        }
        out.push_str(&self.metrics_table());
        out.push_str(&format!(
            "\ntrace: {} events held, {} dropped\n",
            self.trace.len(),
            self.trace_dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    #[test]
    fn equality_ignores_phases() {
        let a = TelemetrySink::enabled();
        let b = TelemetrySink::enabled();
        a.count("x");
        b.count("x");
        drop(a.span("corpus"));
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn render_mentions_each_section() {
        let sink = TelemetrySink::enabled();
        sink.count_labeled("webmail.logins", "ok");
        sink.gauge_max("queue.depth_high_water", 12);
        sink.observe("security.risk_score_milli", 400);
        drop(sink.span("event-loop"));
        sink.trace(5, "login", Some(1));
        let text = sink.report().render();
        assert!(text.contains("event-loop"));
        assert!(text.contains("webmail.logins{ok}"));
        assert!(text.contains("queue.depth_high_water"));
        assert!(text.contains("security.risk_score_milli"));
        assert!(text.contains("trace: 1 events held"));
    }

    #[test]
    fn merge_interleaves_traces_and_sums_metrics() {
        let a = TelemetrySink::enabled();
        let b = TelemetrySink::enabled();
        a.count("runs");
        b.count("runs");
        a.trace(10, "login", Some(1));
        a.trace(30, "login", Some(1));
        b.trace(10, "scrape", None);
        b.trace(20, "scrape", None);
        drop(a.span("event-loop"));
        drop(b.span("event-loop"));
        drop(b.span("dataset"));
        let merged = TelemetryReport::merge(&[a.report(), b.report()]);
        assert_eq!(merged.counter("runs"), 2);
        // Interleaved by time; input 0 wins the t=10 tie.
        let kinds: Vec<&str> = merged.trace.iter().map(|e| e.kind.as_ref()).collect();
        assert_eq!(kinds, vec!["login", "scrape", "scrape", "login"]);
        // Phases accumulate by name in first-appearance order.
        let names: Vec<&str> = merged.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["event-loop", "dataset"]);
        assert_eq!(merged.phases[0].entries, 2);
        // Merging is submission-order-deterministic: same inputs, same
        // report (equality ignores wall-clock phases).
        let again = TelemetryReport::merge(&[a.report(), b.report()]);
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_folds_span_trees_by_path() {
        let a = TelemetrySink::enabled();
        let b = TelemetrySink::enabled();
        for sink in [&a, &b] {
            let outer = sink.span("event-loop");
            drop(outer.child("event", &[("kind", "visit")]));
            drop(outer);
        }
        drop(b.span("dataset"));
        let merged = TelemetryReport::merge(&[a.report(), b.report()]);
        let paths: Vec<&str> = merged.spans.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["dataset", "event-loop", "event-loop;event{kind=visit}"]
        );
        assert_eq!(merged.spans.node("event-loop").unwrap().count, 2);
    }

    #[test]
    fn json_line_round_trips_exactly() {
        let sink = TelemetrySink::enabled();
        sink.count_labeled("webmail.logins", "ok");
        sink.gauge_max("queue.depth_high_water", 12);
        sink.observe("security.risk_score_milli", 0);
        sink.observe("security.risk_score_milli", 400);
        sink.trace(5, "login", Some(1));
        sink.trace_with(9, "sale", None, || "wave=1".to_string());
        {
            let outer = sink.span("event-loop");
            outer.sim(5);
            drop(outer.child("event", &[("kind", "visit")]));
        }
        let report = sink.report();
        let line = report.to_json_line();
        assert!(!line.contains('\n'));
        let back = TelemetryReport::from_json_line(&line).unwrap();
        assert_eq!(back, report, "metrics and trace survive the round trip");
        assert_eq!(back.phases, report.phases);
        assert_eq!(back.spans, report.spans);
        // Serialization itself is deterministic.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn attribution_table_reports_child_coverage() {
        let sink = TelemetrySink::enabled();
        {
            let outer = sink.span("event-loop");
            drop(outer.child("event", &[("kind", "visit")]));
        }
        let text = sink.report().attribution_table();
        assert!(text.contains("event-loop"));
        assert!(text.contains('%'));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(120)), "120µs");
    }
}
