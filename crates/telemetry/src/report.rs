//! Point-in-time reports: what a run recorded, rendered for humans.

use crate::metrics::MetricsSnapshot;
use crate::profile::PhaseSummary;
use crate::table::Table;
use crate::trace::TraceEvent;
use std::time::Duration;

/// Everything a sink recorded, frozen at one instant.
///
/// Equality compares metrics and trace only — phase timings are wall
/// clock and differ between identical runs by construction.
#[derive(Clone, Debug, Default)]
pub struct TelemetryReport {
    /// Counter / gauge / histogram snapshot.
    pub metrics: MetricsSnapshot,
    /// Trace events currently in the ring, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Trace events evicted because the ring was full.
    pub trace_dropped: u64,
    /// Wall-clock phase totals, first-entry order.
    pub phases: Vec<PhaseSummary>,
}

impl PartialEq for TelemetryReport {
    fn eq(&self, other: &Self) -> bool {
        self.metrics == other.metrics
            && self.trace == other.trace
            && self.trace_dropped == other.trace_dropped
    }
}

/// Render a duration the way the profile tables do: seconds above 1s,
/// milliseconds above 1ms, whole microseconds below.
pub fn format_duration(d: Duration) -> String {
    fmt_duration(d)
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

impl TelemetryReport {
    /// Sum of all counter series with base name `name` (see
    /// [`MetricsSnapshot::counter`]).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Merge per-worker (or per-run) reports into one, deterministically:
    ///
    /// * **counters** and **histograms** sum (order-free combinators);
    /// * **gauges** keep the highest value (high-water semantics);
    /// * **traces** are interleaved by `(t_secs, input index)` — each
    ///   input's trace is already time-ordered, so a stable k-way merge
    ///   keyed on sim time with the submission index as tie-break gives
    ///   one canonical stream, independent of which thread ran what;
    /// * **phases** accumulate by name, ordered by first appearance
    ///   scanning inputs in submission order (phase *totals* are wall
    ///   clock and excluded from report equality, as always).
    ///
    /// Because every rule depends only on the inputs and their submission
    /// order — never on thread scheduling — the merged report for a batch
    /// is itself a pure function of `(seeds, configs)`.
    pub fn merge(reports: &[TelemetryReport]) -> TelemetryReport {
        let mut metrics = MetricsSnapshot::default();
        let mut trace_dropped = 0u64;
        let mut profiler = crate::profile::Profiler::default();
        for r in reports {
            metrics.merge_from(&r.metrics);
            trace_dropped += r.trace_dropped;
            for p in &r.phases {
                profiler.record_entries(&p.name, p.total, p.entries);
            }
        }
        // Stable k-way interleave: tag with (t_secs, input index) and
        // sort; stability keeps each input's own order for equal stamps.
        let mut tagged: Vec<(u64, usize, &TraceEvent)> = Vec::new();
        for (i, r) in reports.iter().enumerate() {
            for e in &r.trace {
                tagged.push((e.at_secs, i, e));
            }
        }
        tagged.sort_by_key(|&(t, i, _)| (t, i));
        TelemetryReport {
            metrics,
            trace: tagged.into_iter().map(|(_, _, e)| e.clone()).collect(),
            trace_dropped,
            phases: profiler.summaries(),
        }
    }

    /// The phase-time table (`--profile` output).
    pub fn phase_table(&self) -> String {
        let total: Duration = self.phases.iter().map(|p| p.total).sum();
        let mut t = Table::new(&["phase", "wall time", "share", "entries"]).numeric();
        for p in &self.phases {
            let share = if total.is_zero() {
                0.0
            } else {
                100.0 * p.total.as_secs_f64() / total.as_secs_f64()
            };
            t.row([
                p.name.clone(),
                fmt_duration(p.total),
                format!("{share:.1}%"),
                p.entries.to_string(),
            ]);
        }
        t.row([
            "total".to_string(),
            fmt_duration(total),
            String::new(),
            String::new(),
        ]);
        t.render()
    }

    /// The metrics summary: counters, gauges, then histograms.
    pub fn metrics_table(&self) -> String {
        let mut out = String::new();
        if !self.metrics.counters.is_empty() {
            let mut t = Table::new(&["counter", "value"]).numeric();
            for (k, v) in &self.metrics.counters {
                t.row([k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.metrics.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(&["gauge", "value"]).numeric();
            for (k, v) in &self.metrics.gauges {
                t.row([k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.metrics.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = Table::new(&["histogram", "count", "min", "mean", "max"]).numeric();
            for (k, h) in &self.metrics.histograms {
                let s = h.summary();
                t.row([
                    k.clone(),
                    s.count.to_string(),
                    s.min.to_string(),
                    format!("{:.1}", s.mean),
                    s.max.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// Full human-readable rendering: phases, metrics, trace volume.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.phases.is_empty() {
            out.push_str(&self.phase_table());
            out.push('\n');
        }
        out.push_str(&self.metrics_table());
        out.push_str(&format!(
            "\ntrace: {} events held, {} dropped\n",
            self.trace.len(),
            self.trace_dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    #[test]
    fn equality_ignores_phases() {
        let a = TelemetrySink::enabled();
        let b = TelemetrySink::enabled();
        a.count("x");
        b.count("x");
        drop(a.span("corpus"));
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn render_mentions_each_section() {
        let sink = TelemetrySink::enabled();
        sink.count_labeled("webmail.logins", "ok");
        sink.gauge_max("queue.depth_high_water", 12);
        sink.observe("security.risk_score_milli", 400);
        drop(sink.span("event-loop"));
        sink.trace(5, "login", Some(1));
        let text = sink.report().render();
        assert!(text.contains("event-loop"));
        assert!(text.contains("webmail.logins{ok}"));
        assert!(text.contains("queue.depth_high_water"));
        assert!(text.contains("security.risk_score_milli"));
        assert!(text.contains("trace: 1 events held"));
    }

    #[test]
    fn merge_interleaves_traces_and_sums_metrics() {
        let a = TelemetrySink::enabled();
        let b = TelemetrySink::enabled();
        a.count("runs");
        b.count("runs");
        a.trace(10, "login", Some(1));
        a.trace(30, "login", Some(1));
        b.trace(10, "scrape", None);
        b.trace(20, "scrape", None);
        drop(a.span("event-loop"));
        drop(b.span("event-loop"));
        drop(b.span("dataset"));
        let merged = TelemetryReport::merge(&[a.report(), b.report()]);
        assert_eq!(merged.counter("runs"), 2);
        // Interleaved by time; input 0 wins the t=10 tie.
        let kinds: Vec<&str> = merged.trace.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["login", "scrape", "scrape", "login"]);
        // Phases accumulate by name in first-appearance order.
        let names: Vec<&str> = merged.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["event-loop", "dataset"]);
        assert_eq!(merged.phases[0].entries, 2);
        // Merging is submission-order-deterministic: same inputs, same
        // report (equality ignores wall-clock phases).
        let again = TelemetryReport::merge(&[a.report(), b.report()]);
        assert_eq!(merged, again);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(120)), "120µs");
    }
}
