//! Hierarchical span aggregation: where the wall clock actually went.
//!
//! The flat phase profiler ([`crate::profile`]) answers *"how long did
//! the event loop take?"*; the span tree answers *"and which event
//! kinds inside it?"*. Every [`SpanGuard`](crate::sink::SpanGuard)
//! opened while another guard is live becomes a **child** of that
//! guard's node, so a run builds an aggregate tree keyed by path —
//! `event-loop;event{kind=visit,class=Curious}` — with per-path wall
//! time, entry count, and the sim-time range the span covered.
//!
//! Wall-clock totals live *only* here and in the profiler, never in the
//! trace ring, so two identical runs still produce equal
//! [`TelemetryReport`](crate::report::TelemetryReport)s: report
//! equality compares the deterministic facets (metrics, trace) and the
//! span tree's *structure* is deterministic too ([`SpanTreeSnapshot::structure`]).
//!
//! Path segments are joined with `;` — the flamegraph collapsed-stack
//! convention — so span names must not contain `;`.

use crate::json::Json;
use crate::report::format_duration;
use crate::table::Table;
use std::collections::BTreeMap;
use std::time::Duration;

/// Live arena of span nodes, owned by an enabled sink.
///
/// Nodes are created on first open of a `(parent, name)` pair and
/// accumulate across re-entries, so the tree stays small (one node per
/// distinct path) however many spans a run opens.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    parent: Option<usize>,
    /// Direct children, in creation order. Fan-out per node is a
    /// handful of static names, so a linear scan beats a map — and,
    /// unlike a string-keyed map, re-entry allocates nothing, keeping
    /// the hot open path (tens of thousands of scrape-attempt spans per
    /// run) out of the parent's measured self time.
    children: Vec<usize>,
    total: Duration,
    count: u64,
    sim_min: Option<u64>,
    sim_max: Option<u64>,
}

impl SpanTree {
    /// Index of the node for `name` under `parent`, creating it on
    /// first use. Re-entry is allocation-free.
    pub fn open(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        for &idx in siblings {
            if self.nodes[idx].name == name {
                return idx;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(), // lint:allow(alloc-hot): first open of this span name only; re-entry returns above
            parent,
            children: Vec::new(), // lint:allow(alloc-hot): empty child list; allocates only when a child opens
            total: Duration::ZERO,
            count: 0,
            sim_min: None,
            sim_max: None,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Fold one finished span instance into its node.
    pub fn record(&mut self, idx: usize, elapsed: Duration) {
        if let Some(n) = self.nodes.get_mut(idx) {
            n.total += elapsed;
            n.count += 1;
        }
    }

    /// Widen a node's sim-time range to include `at_secs`.
    pub fn annotate_sim(&mut self, idx: usize, at_secs: u64) {
        if let Some(n) = self.nodes.get_mut(idx) {
            n.sim_min = Some(n.sim_min.map_or(at_secs, |m| m.min(at_secs)));
            n.sim_max = Some(n.sim_max.map_or(at_secs, |m| m.max(at_secs)));
        }
    }

    /// The sim-time range a node has been annotated with, if any.
    pub fn sim_range(&self, idx: usize) -> Option<(u64, u64)> {
        let n = self.nodes.get(idx)?;
        Some((n.sim_min?, n.sim_max?))
    }

    /// The `;`-joined path from the root to `idx`.
    pub fn path_of(&self, idx: usize) -> String {
        let mut segments = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            match self.nodes.get(i) {
                Some(n) => {
                    segments.push(n.name.clone());
                    cur = n.parent;
                }
                None => break,
            }
        }
        segments.reverse();
        segments.join(";")
    }

    /// Whether any span was ever opened.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Freeze into a path-keyed snapshot, sorted by path.
    pub fn snapshot(&self) -> SpanTreeSnapshot {
        // Parents are always created before children, so one forward
        // pass can build every full path.
        let mut paths: Vec<String> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let path = match n.parent {
                Some(p) => format!("{};{}", paths[p], n.name),
                None => n.name.clone(),
            };
            paths.push(path);
        }
        let mut nodes: Vec<SpanNode> = self
            .nodes
            .iter()
            .zip(paths)
            .map(|(n, path)| SpanNode {
                path,
                total: n.total,
                count: n.count,
                sim_min: n.sim_min,
                sim_max: n.sim_max,
            })
            .collect();
        nodes.sort_by(|a, b| a.path.cmp(&b.path));
        SpanTreeSnapshot { nodes }
    }
}

/// One [`SpanTreeSnapshot::structure`] row: `(path, count, sim range)`.
pub type SpanStructureRow = (String, u64, Option<(u64, u64)>);

/// One aggregated span path in a [`SpanTreeSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// `;`-joined path from the root (`"event-loop;scrape;poll"`).
    pub path: String,
    /// Accumulated wall time across entries.
    pub total: Duration,
    /// Number of span instances folded in.
    pub count: u64,
    /// Earliest sim second this span was annotated with, if any.
    pub sim_min: Option<u64>,
    /// Latest sim second this span was annotated with, if any.
    pub sim_max: Option<u64>,
}

impl SpanNode {
    /// The final path segment (`"poll"` for `"event-loop;scrape;poll"`).
    pub fn leaf(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }

    /// The leaf with any `{label}` suffix stripped (`"event"` for
    /// `"event{kind=visit}"`).
    pub fn leaf_base(&self) -> &str {
        let leaf = self.leaf();
        leaf.split('{').next().unwrap_or(leaf)
    }

    /// The parent path, if this node is not a root.
    pub fn parent_path(&self) -> Option<&str> {
        self.path.rsplit_once(';').map(|(p, _)| p)
    }
}

/// How much of a phase's wall time its child spans account for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanAttribution {
    /// Total wall time of every node whose leaf matches the phase.
    pub total: Duration,
    /// Wall time of those nodes' direct children.
    pub children: Duration,
}

impl SpanAttribution {
    /// Fraction of `total` covered by named children, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.children.as_secs_f64() / self.total.as_secs_f64()
        }
    }
}

/// Frozen, mergeable view of a [`SpanTree`], sorted by path.
///
/// Equality compares everything including wall-clock totals — exact
/// `Duration` addition is associative and commutative, which is what
/// the merge proptests pin down. Run-to-run *determinism* claims use
/// [`structure`](SpanTreeSnapshot::structure) instead, which drops the
/// wall-clock fields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTreeSnapshot {
    /// Aggregated nodes, ascending by path.
    pub nodes: Vec<SpanNode>,
}

impl SpanTreeSnapshot {
    /// Whether the snapshot holds no spans.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Fold another snapshot into this one, keyed by path: totals and
    /// counts add, sim ranges widen. Order-free and associative.
    pub fn merge_from(&mut self, other: &SpanTreeSnapshot) {
        let mut by_path: BTreeMap<String, SpanNode> =
            self.nodes.drain(..).map(|n| (n.path.clone(), n)).collect();
        for n in &other.nodes {
            match by_path.get_mut(&n.path) {
                Some(slot) => {
                    slot.total += n.total;
                    slot.count += n.count;
                    slot.sim_min = match (slot.sim_min, n.sim_min) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    slot.sim_max = match (slot.sim_max, n.sim_max) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                }
                None => {
                    by_path.insert(n.path.clone(), n.clone());
                }
            }
        }
        self.nodes = by_path.into_values().collect();
    }

    /// The node at exactly `path`, if present.
    pub fn node(&self, path: &str) -> Option<&SpanNode> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// Sum of the direct children's totals under `path`.
    pub fn children_total(&self, path: &str) -> Duration {
        self.nodes
            .iter()
            .filter(|n| n.parent_path() == Some(path))
            .map(|n| n.total)
            .sum()
    }

    /// Wall time spent in `path` itself, excluding its direct children.
    pub fn self_time(&self, path: &str) -> Duration {
        match self.node(path) {
            Some(n) => n.total.saturating_sub(self.children_total(path)),
            None => Duration::ZERO,
        }
    }

    /// Attribution for every node whose leaf is exactly `name`
    /// (aggregated across paths — a `scrape` span appears both inside
    /// and outside `event{kind=scrape}`). `None` when no node matches.
    pub fn attribution(&self, name: &str) -> Option<SpanAttribution> {
        let mut total = Duration::ZERO;
        let mut children = Duration::ZERO;
        let mut seen = false;
        for n in &self.nodes {
            if n.leaf() == name {
                seen = true;
                total += n.total;
                children += self.children_total(&n.path);
            }
        }
        seen.then_some(SpanAttribution { total, children })
    }

    /// The deterministic projection: `(path, count, sim range)` per
    /// node, no wall clock. Two runs of the same seeded config produce
    /// identical structures.
    pub fn structure(&self) -> Vec<SpanStructureRow> {
        self.nodes
            .iter()
            .map(|n| {
                let range = match (n.sim_min, n.sim_max) {
                    (Some(a), Some(b)) => Some((a, b)),
                    _ => None,
                };
                (n.path.clone(), n.count, range)
            })
            .collect()
    }

    /// Flamegraph collapsed-stack export: one `path self_time_µs` line
    /// per node, every node included (so the path *set* is a
    /// deterministic function of the run, whatever the timings).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&n.path);
            out.push(' ');
            out.push_str(&self.self_time(&n.path).as_micros().to_string());
            out.push('\n');
        }
        out
    }

    /// The top-spans table: every path with count, total, self time,
    /// and share of its parent, sorted by total descending (path as the
    /// tie-break). `limit` bounds the row count; 0 means all.
    pub fn top_spans_table(&self, limit: usize) -> String {
        let mut order: Vec<&SpanNode> = self.nodes.iter().collect();
        order.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.path.cmp(&b.path)));
        if limit > 0 {
            order.truncate(limit);
        }
        let mut t = Table::new(&["span", "count", "total", "self", "of parent"]).numeric();
        for n in order {
            let of_parent = n
                .parent_path()
                .and_then(|p| self.node(p))
                .map(|parent| {
                    if parent.total.is_zero() {
                        String::new()
                    } else {
                        format!(
                            "{:.1}%",
                            100.0 * n.total.as_secs_f64() / parent.total.as_secs_f64()
                        )
                    }
                })
                .unwrap_or_default();
            t.row([
                n.path.clone(),
                n.count.to_string(),
                format_duration(n.total),
                format_duration(self.self_time(&n.path)),
                of_parent,
            ]);
        }
        t.render()
    }

    /// JSON form: an array of node objects (durations in nanoseconds).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.nodes
                .iter()
                .map(|n| {
                    let mut fields = vec![
                        ("path".to_string(), Json::Str(n.path.clone())),
                        ("total_ns".to_string(), Json::U(n.total.as_nanos() as u64)),
                        ("count".to_string(), Json::U(n.count)),
                    ];
                    if let Some(m) = n.sim_min {
                        fields.push(("sim_min".to_string(), Json::U(m)));
                    }
                    if let Some(m) = n.sim_max {
                        fields.push(("sim_max".to_string(), Json::U(m)));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }

    /// Parse the [`to_json`](SpanTreeSnapshot::to_json) form back.
    pub fn from_json(json: &Json) -> Result<SpanTreeSnapshot, String> {
        let arr = json.as_array().ok_or("spans: expected array")?;
        let mut nodes = Vec::with_capacity(arr.len());
        for item in arr {
            let path = item
                .get("path")
                .and_then(Json::as_str)
                .ok_or("span node: missing path")?
                .to_string();
            let total_ns = item
                .get("total_ns")
                .and_then(Json::as_u64)
                .ok_or("span node: missing total_ns")?;
            let count = item
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("span node: missing count")?;
            nodes.push(SpanNode {
                path,
                total: Duration::from_nanos(total_ns),
                count,
                sim_min: item.get("sim_min").and_then(Json::as_u64),
                sim_max: item.get("sim_max").and_then(Json::as_u64),
            });
        }
        nodes.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(SpanTreeSnapshot { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn sample() -> SpanTree {
        let mut t = SpanTree::default();
        let root = t.open(None, "event-loop");
        let visit = t.open(Some(root), "event{kind=visit}");
        let scrape = t.open(Some(root), "event{kind=scrape}");
        t.record(root, ms(100));
        t.record(visit, ms(60));
        t.record(visit, ms(10));
        t.record(scrape, ms(20));
        t.annotate_sim(root, 3600);
        t.annotate_sim(root, 60);
        t
    }

    #[test]
    fn paths_counts_and_self_time() {
        let snap = sample().snapshot();
        let paths: Vec<&str> = snap.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "event-loop",
                "event-loop;event{kind=scrape}",
                "event-loop;event{kind=visit}",
            ]
        );
        let visit = snap.node("event-loop;event{kind=visit}").unwrap();
        assert_eq!(visit.count, 2);
        assert_eq!(visit.total, ms(70));
        assert_eq!(visit.leaf_base(), "event");
        assert_eq!(visit.parent_path(), Some("event-loop"));
        assert_eq!(snap.self_time("event-loop"), ms(10));
        let attr = snap.attribution("event-loop").unwrap();
        assert_eq!(attr.total, ms(100));
        assert_eq!(attr.children, ms(90));
        assert!((attr.coverage() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn sim_range_widens_and_survives_snapshot() {
        let tree = sample();
        assert_eq!(tree.sim_range(0), Some((60, 3600)));
        let snap = tree.snapshot();
        let root = snap.node("event-loop").unwrap();
        assert_eq!((root.sim_min, root.sim_max), (Some(60), Some(3600)));
        assert_eq!(
            snap.structure()[0],
            ("event-loop".to_string(), 1, Some((60, 3600)))
        );
    }

    #[test]
    fn reentry_reuses_nodes() {
        let mut t = SpanTree::default();
        let a = t.open(None, "scrape");
        let b = t.open(None, "scrape");
        assert_eq!(a, b);
        let c = t.open(Some(a), "poll");
        let d = t.open(Some(a), "poll");
        assert_eq!(c, d);
        assert_eq!(t.path_of(c), "scrape;poll");
    }

    #[test]
    fn merge_adds_by_path_and_widens_sim() {
        let mut a = sample().snapshot();
        let b = sample().snapshot();
        a.merge_from(&b);
        let root = a.node("event-loop").unwrap();
        assert_eq!(root.total, ms(200));
        assert_eq!(root.count, 2);
        assert_eq!((root.sim_min, root.sim_max), (Some(60), Some(3600)));
        // Merging an empty snapshot is a no-op.
        let before = a.clone();
        a.merge_from(&SpanTreeSnapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn collapsed_lists_every_path_with_self_micros() {
        let snap = sample().snapshot();
        let collapsed = snap.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "event-loop 10000");
        assert_eq!(lines[1], "event-loop;event{kind=scrape} 20000");
        assert_eq!(lines[2], "event-loop;event{kind=visit} 70000");
    }

    #[test]
    fn json_round_trips() {
        let snap = sample().snapshot();
        let json = snap.to_json();
        let back = SpanTreeSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        let reparsed = Json::parse(&json.compact()).unwrap();
        assert_eq!(SpanTreeSnapshot::from_json(&reparsed).unwrap(), snap);
    }

    #[test]
    fn top_spans_table_orders_by_total() {
        let table = sample().snapshot().top_spans_table(2);
        let body: Vec<&str> = table.lines().collect();
        // Header, separator, then event-loop (100ms) and visit (70ms).
        assert!(body[2].starts_with("event-loop "));
        assert!(body[3].contains("event{kind=visit}"));
        assert!(body[3].contains("70.00ms"));
        assert_eq!(body.len(), 4);
    }
}
