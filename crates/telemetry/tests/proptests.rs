//! Property tests for [`TelemetryReport::merge`]: the merge must be
//! **associative** (any grouping of the same submission-ordered inputs
//! yields an identical report — this is what lets the runner merge
//! worker reports opportunistically) and **order-insensitive** for the
//! order-free facets — counters, gauges, histograms, and span trees —
//! so sharded fleet telemetry can be folded in any order.
//!
//! Traces and the first-appearance ordering of phases are deliberately
//! submission-order-sensitive, so the permutation property compares
//! metrics and spans, and phases as a name-keyed set.

use proptest::prelude::*;
use pwnd_telemetry::{PhaseSummary, TelemetryReport, TelemetrySink};

/// Deterministically interpret `(selector, value)` ops into one report,
/// exercising every mergeable facet including nested spans.
fn build_report(ops: &[(u8, u64)]) -> TelemetryReport {
    let sink = TelemetrySink::enabled();
    for &(sel, v) in ops {
        match sel % 6 {
            0 => sink.count_by("runs", v % 100),
            1 => {
                let label = if v % 2 == 0 { "ok" } else { "blocked" };
                sink.count_labeled_by("webmail.logins", label, v % 10);
            }
            2 => sink.gauge_max("queue.depth_high_water", v % 1_000),
            3 => sink.observe("security.risk_score_milli", v),
            4 => sink.trace(v % 50, "login", Some((v % 5) as u32)),
            _ => {
                let phase = if v % 2 == 0 { "event-loop" } else { "scrape" };
                let outer = sink.span(phase);
                outer.sim(v % 100);
                if v % 3 != 0 {
                    let kind = if v % 4 == 0 { "visit" } else { "scrape" };
                    drop(outer.child("event", &[("kind", kind)]));
                }
            }
        }
    }
    sink.report()
}

/// Phases as a sorted name-keyed set (ordering is submission-order by
/// design, so permutation comparisons must drop it).
fn phase_set(report: &TelemetryReport) -> Vec<PhaseSummary> {
    let mut phases = report.phases.clone();
    phases.sort_by(|a, b| a.name.cmp(&b.name));
    phases
}

proptest! {
    /// Any grouping of a 3-way merge — flat, left-nested, right-nested —
    /// yields the identical report: metrics, trace interleaving, phase
    /// totals, and span trees (exact `Duration` addition) all agree.
    #[test]
    fn merge_is_associative(ops in proptest::collection::vec((0u8..6, 0u64..10_000), 0..60)) {
        let mut split: [Vec<(u8, u64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, op) in ops.iter().enumerate() {
            split[i % 3].push(*op);
        }
        let [a, b, c] = split.map(|ops| build_report(&ops));
        let flat = TelemetryReport::merge(&[a.clone(), b.clone(), c.clone()]);
        let left = TelemetryReport::merge(&[
            TelemetryReport::merge(&[a.clone(), b.clone()]),
            c.clone(),
        ]);
        let right = TelemetryReport::merge(&[
            a.clone(),
            TelemetryReport::merge(&[b.clone(), c.clone()]),
        ]);
        for other in [&left, &right] {
            prop_assert_eq!(&flat, other);
            prop_assert_eq!(&flat.phases, &other.phases);
            prop_assert_eq!(&flat.spans, &other.spans);
        }
    }

    /// Permuting the inputs leaves every order-free facet unchanged:
    /// counters, gauges, histograms, span trees, and the name-keyed
    /// phase totals.
    #[test]
    fn merge_is_order_insensitive_for_order_free_facets(
        ops in proptest::collection::vec((0u8..6, 0u64..10_000), 0..60),
    ) {
        let mut split: [Vec<(u8, u64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, op) in ops.iter().enumerate() {
            split[i % 3].push(*op);
        }
        let [a, b, c] = split.map(|ops| build_report(&ops));
        let fwd = TelemetryReport::merge(&[a.clone(), b.clone(), c.clone()]);
        let rev = TelemetryReport::merge(&[c, b, a]);
        prop_assert_eq!(&fwd.metrics, &rev.metrics);
        prop_assert_eq!(&fwd.spans, &rev.spans);
        prop_assert_eq!(fwd.trace_dropped, rev.trace_dropped);
        prop_assert_eq!(phase_set(&fwd), phase_set(&rev));
    }

    /// A streamed report survives the JSONL round trip exactly,
    /// whatever it recorded.
    #[test]
    fn json_line_round_trip_is_exact(ops in proptest::collection::vec((0u8..6, 0u64..10_000), 0..40)) {
        let report = build_report(&ops);
        let line = report.to_json_line();
        let back = TelemetryReport::from_json_line(&line)
            .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(&back.phases, &report.phases);
        prop_assert_eq!(&back.spans, &report.spans);
    }
}
