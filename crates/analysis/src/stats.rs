//! Empirical distribution utilities.

/// An empirical cumulative distribution function.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x. Zero for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }

    /// The median. `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Sampled (x, F(x)) points for plotting: one per sample, deduped on x.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(n);
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n as f64;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }
}

/// Median of a slice (convenience over [`Ecdf`]).
pub fn median(samples: &[f64]) -> Option<f64> {
    Ecdf::new(samples.to_vec()).median()
}

/// Arithmetic mean. `None` when empty.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_correctly() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.median(), Some(30.0));
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
        assert_eq!(e.quantile(0.8), Some(40.0));
    }

    #[test]
    fn empty_and_nan_handling() {
        let e = Ecdf::new(vec![f64::NAN, f64::NAN]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.median(), None);
        assert_eq!(median(&[]), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(mean(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn points_dedupe_ties() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pts[1], (2.0, 1.0));
    }
}
