//! The two-sample Cramér–von Mises test (Anderson's version).
//!
//! §4.3.4 uses this test to show that login locations for
//! location-advertised leaks come from a *different distribution* than
//! for bare leaks (paste sites: p = 0.0017 UK / 7e-7 US — reject; forums:
//! p ≈ 0.27 — fail to reject; threshold 0.01).
//!
//! Two p-values are provided:
//!
//! * **asymptotic** — the statistic is standardized to the limiting
//!   Cramér–von Mises distribution, whose CDF we evaluate through the
//!   classical Bessel-K(1/4) series (the same construction as
//!   `scipy.stats.cramervonmises_2samp(method="asymptotic")`);
//! * **permutation** — a seeded Monte-Carlo permutation test, exact in
//!   distribution, used to cross-validate the series implementation.

use pwnd_sim::Rng;

/// Result of the two-sample test.
#[derive(Clone, Copy, Debug)]
pub struct CvmResult {
    /// Anderson's `T` statistic.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

/// Compute Anderson's two-sample statistic `T` from raw samples.
///
/// Panics if either sample is empty.
pub fn statistic(x: &[f64], y: &[f64]) -> f64 {
    assert!(!x.is_empty() && !y.is_empty(), "samples must be non-empty");
    let n = x.len();
    let m = y.len();
    let nf = n as f64;
    let mf = m as f64;
    let nn = (n + m) as f64;

    // Combined midranks.
    let mut combined: Vec<(f64, usize)> = x
        .iter()
        .map(|&v| (v, 0usize))
        .chain(y.iter().map(|&v| (v, 1usize)))
        .collect();
    combined.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite samples"));
    // Midranks for ties.
    let mut ranks = vec![0.0f64; combined.len()];
    let mut i = 0;
    while i < combined.len() {
        let mut j = i;
        while j + 1 < combined.len() && combined[j + 1].0 == combined[i].0 {
            j += 1;
        }
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg;
        }
        i = j + 1;
    }
    let rx: Vec<f64> = combined
        .iter()
        .zip(&ranks)
        .filter(|((_, s), _)| *s == 0)
        .map(|(_, &r)| r)
        .collect();
    let ry: Vec<f64> = combined
        .iter()
        .zip(&ranks)
        .filter(|((_, s), _)| *s == 1)
        .map(|(_, &r)| r)
        .collect();

    let u: f64 = nf
        * rx.iter()
            .enumerate()
            .map(|(i, &r)| (r - (i + 1) as f64).powi(2))
            .sum::<f64>()
        + mf * ry
            .iter()
            .enumerate()
            .map(|(j, &r)| (r - (j + 1) as f64).powi(2))
            .sum::<f64>();

    u / (nf * mf * nn) - (4.0 * mf * nf - 1.0) / (6.0 * nn)
}

/// Modified Bessel function of the second kind, `K_{1/4}(q)`, by numerical
/// integration of `∫ exp(-q cosh t) cosh(t/4) dt`.
fn bessel_k_quarter(q: f64) -> f64 {
    debug_assert!(q > 0.0);
    // Integrand underflows once q·cosh(t) > ~745; bound the domain there.
    let t_max = ((745.0 / q).max(1.0)).acosh().min(40.0) + 1.0;
    let steps = 4_000usize;
    let h = t_max / steps as f64;
    let f = |t: f64| (-q * t.cosh()).exp() * (0.25 * t).cosh();
    // Simpson's rule.
    let mut acc = f(0.0) + f(t_max);
    for k in 1..steps {
        let t = k as f64 * h;
        acc += f(t) * if k % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

/// CDF of the limiting (infinite-sample) Cramér–von Mises distribution.
pub fn cdf_cvm_inf(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    // ratio_k = Γ(k + 1/2) / Γ(k + 1); ratio_0 = √π.
    let mut ratio = std::f64::consts::PI.sqrt();
    for k in 0..24u32 {
        if k > 0 {
            let kf = k as f64;
            ratio *= (kf - 0.5) / kf;
        }
        let y = (4 * k + 1) as f64;
        let q = y * y / (16.0 * x);
        if q > 700.0 {
            continue; // exp(-q) underflows; term is zero
        }
        let term = ratio / (std::f64::consts::PI.powf(1.5) * x.sqrt())
            * y.sqrt()
            * (-q).exp()
            * bessel_k_quarter(q);
        total += term;
        if term.abs() < 1e-14 && k > 2 {
            break;
        }
    }
    total.clamp(0.0, 1.0)
}

/// Run the test with the asymptotic p-value.
pub fn cramer_von_mises_2samp(x: &[f64], y: &[f64]) -> CvmResult {
    let t = statistic(x, y);
    let nf = x.len() as f64;
    let mf = y.len() as f64;
    let nn = nf + mf;
    // Standardize T to the limiting distribution's scale (Anderson's
    // small-sample mean/variance correction, as in scipy).
    let et = (1.0 + 1.0 / nn) / 6.0;
    let vt = (nn + 1.0) * (4.0 * mf * nf * nn - 3.0 * (mf * mf + nf * nf) - 2.0 * mf * nf)
        / (45.0 * nn * nn * 4.0 * mf * nf);
    let tn = 1.0 / 6.0 + (t - et) / (45.0 * vt).sqrt();
    let p = if tn < 0.003 {
        1.0
    } else {
        (1.0 - cdf_cvm_inf(tn)).max(0.0)
    };
    CvmResult {
        statistic: t,
        p_value: p,
    }
}

/// Seeded Monte-Carlo permutation p-value for the same statistic.
pub fn permutation_p_value(x: &[f64], y: &[f64], permutations: usize, seed: u64) -> f64 {
    let t_obs = statistic(x, y);
    let mut pool: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let mut rng = Rng::seed_from(seed);
    let mut ge = 0usize;
    for _ in 0..permutations {
        rng.shuffle(&mut pool);
        let (px, py) = pool.split_at(x.len());
        if statistic(px, py) >= t_obs - 1e-12 {
            ge += 1;
        }
    }
    (ge + 1) as f64 / (permutations + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_sim::dist::Normal;

    #[test]
    fn limiting_cdf_known_values() {
        // Critical values of the CvM limiting distribution:
        // F(0.46136) ≈ 0.95, F(0.74346) ≈ 0.99 (Anderson & Darling 1952).
        assert!((cdf_cvm_inf(0.46136) - 0.95).abs() < 0.005);
        assert!((cdf_cvm_inf(0.74346) - 0.99).abs() < 0.005);
        // Median ≈ 0.11888.
        assert!((cdf_cvm_inf(0.11888) - 0.5).abs() < 0.01);
        assert_eq!(cdf_cvm_inf(0.0), 0.0);
        assert!(cdf_cvm_inf(10.0) > 0.9999);
    }

    #[test]
    fn same_distribution_high_p() {
        let mut rng = Rng::seed_from(1);
        let d = Normal::new(0.0, 1.0);
        let x: Vec<f64> = (0..80).map(|_| d.sample(&mut rng)).collect();
        let y: Vec<f64> = (0..90).map(|_| d.sample(&mut rng)).collect();
        let r = cramer_von_mises_2samp(&x, &y);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn shifted_distribution_low_p() {
        let mut rng = Rng::seed_from(2);
        let d0 = Normal::new(0.0, 1.0);
        let d1 = Normal::new(1.5, 1.0);
        let x: Vec<f64> = (0..60).map(|_| d0.sample(&mut rng)).collect();
        let y: Vec<f64> = (0..60).map(|_| d1.sample(&mut rng)).collect();
        let r = cramer_von_mises_2samp(&x, &y);
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn asymptotic_agrees_with_permutation() {
        let mut rng = Rng::seed_from(3);
        let d0 = Normal::new(0.0, 1.0);
        let d1 = Normal::new(0.55, 1.0);
        let x: Vec<f64> = (0..50).map(|_| d0.sample(&mut rng)).collect();
        let y: Vec<f64> = (0..50).map(|_| d1.sample(&mut rng)).collect();
        let asym = cramer_von_mises_2samp(&x, &y).p_value;
        let perm = permutation_p_value(&x, &y, 4_000, 99);
        // Moderate effect: both p-values should land in the same decade.
        assert!(
            (asym - perm).abs() < 0.03 || (asym / perm).ln().abs() < 1.2,
            "asym {asym} perm {perm}"
        );
    }

    #[test]
    fn statistic_is_symmetric_under_swap() {
        let x = vec![1.0, 3.0, 5.0, 7.0];
        let y = vec![2.0, 4.0, 6.0];
        let a = statistic(&x, &y);
        let b = statistic(&y, &x);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn handles_ties_via_midranks() {
        let x = vec![1.0, 1.0, 2.0, 2.0];
        let y = vec![1.0, 2.0, 3.0, 3.0];
        let t = statistic(&x, &y);
        assert!(t.is_finite());
    }

    #[test]
    fn anderson_formula_reference_value() {
        // Hand-computed from Anderson's formula for x = 1..7 and
        // y = 1.5, 2.5, …, 5.5: the x ranks are 1,3,5,7,9,11,12 and the
        // y ranks 2,4,6,8,10, so U = 7·80 + 5·55 = 835 and
        // T = 835/420 − 139/72 = 0.0575396825…, an interleaved (very
        // compatible) pair, so the p-value must be near 1.
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let y = vec![1.5, 2.5, 3.5, 4.5, 5.5];
        let r = cramer_von_mises_2samp(&x, &y);
        let expected = 835.0 / 420.0 - 139.0 / 72.0;
        assert!(
            (r.statistic - expected).abs() < 1e-12,
            "T = {}",
            r.statistic
        );
        assert!(r.p_value > 0.8, "p = {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        statistic(&[], &[1.0]);
    }
}
