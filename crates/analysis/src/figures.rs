//! Data series for Figures 1–6.
//!
//! Each builder consumes the published [`Dataset`] only — never simulator
//! ground truth — and returns plain data (fractions, ECDFs, distance
//! vectors) that the report renderer and the benches print.

use crate::stats::Ecdf;
use crate::taxonomy::{classify, AccessClasses};
use pwnd_monitor::dataset::{Dataset, ParsedAccess};
use pwnd_net::geo::{haversine_km, GeoPoint, UK_MIDPOINT, US_MIDPOINT};
use std::collections::BTreeMap;

/// Outlet labels in figure order.
pub const OUTLETS: [&str; 3] = ["malware", "paste", "forum"];

/// Figure 1: distribution of access types per leak outlet.
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// (outlet, fraction per class in [curious, gold digger, hijacker,
    /// spammer] order, number of accesses).
    pub rows: Vec<(String, [f64; 4], usize)>,
}

/// Build Figure 1.
pub fn fig1(ds: &Dataset) -> Fig1 {
    let mut rows = Vec::new();
    for outlet in OUTLETS {
        let accesses: Vec<&ParsedAccess> = ds.accesses_for_outlet(outlet).collect();
        let n = accesses.len();
        let mut counts = [0usize; 4];
        for a in &accesses {
            let c = classify(a);
            let arr = c.as_array();
            for (i, &set) in arr.iter().enumerate() {
                if set {
                    counts[i] += 1;
                }
            }
        }
        let fractions = if n == 0 {
            [0.0; 4]
        } else {
            [
                counts[0] as f64 / n as f64,
                counts[1] as f64 / n as f64,
                counts[2] as f64 / n as f64,
                counts[3] as f64 / n as f64,
            ]
        };
        rows.push((outlet.to_string(), fractions, n));
    }
    Fig1 { rows }
}

/// Figure 2: CDF of unique-access durations per taxonomy class.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// (dominant class label, ECDF of durations in minutes).
    pub series: Vec<(String, Ecdf)>,
}

/// Build Figure 2.
pub fn fig2(ds: &Dataset) -> Fig2 {
    let mut buckets: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for a in &ds.accesses {
        let label = classify(a).dominant();
        buckets
            .entry(label)
            .or_default()
            .push(a.duration_secs() as f64 / 60.0);
    }
    Fig2 {
        series: AccessClasses::LABELS
            .iter()
            .map(|&l| {
                (
                    l.to_string(),
                    Ecdf::new(buckets.get(l).cloned().unwrap_or_default()),
                )
            })
            .collect(),
    }
}

/// Figure 3: CDF of time between leak and first access, per outlet.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// (outlet, ECDF of days-to-first-access).
    pub series: Vec<(String, Ecdf)>,
}

/// Build Figure 3.
pub fn fig3(ds: &Dataset) -> Fig3 {
    let mut series = Vec::new();
    for outlet in OUTLETS {
        let days: Vec<f64> = ds
            .accesses_for_outlet(outlet)
            .filter_map(|a| {
                let rec = ds.account_record(a.account)?;
                Some((a.first_seen_secs as f64 - rec.leaked_at_secs as f64).max(0.0) / 86_400.0)
            })
            .collect();
        series.push((outlet.to_string(), Ecdf::new(days)));
    }
    Fig3 { series }
}

/// One point of Figure 4's per-account access timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig4Point {
    /// Account index.
    pub account: u32,
    /// Outlet label.
    pub outlet: String,
    /// Days between the account's leak and this access's first sighting.
    pub day: f64,
}

/// Build Figure 4 (scatter of accesses over time per account).
pub fn fig4(ds: &Dataset) -> Vec<Fig4Point> {
    let mut out = Vec::new();
    for a in &ds.accesses {
        if let Some(rec) = ds.account_record(a.account) {
            out.push(Fig4Point {
                account: a.account,
                outlet: rec.outlet.clone(),
                day: (a.first_seen_secs as f64 - rec.leaked_at_secs as f64).max(0.0) / 86_400.0,
            });
        }
    }
    out.sort_by(|x, y| {
        (x.account, x.day)
            .partial_cmp(&(y.account, y.day))
            .expect("finite")
    });
    out
}

/// Figure 5: system-configuration distributions per outlet.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// Per outlet: (browser label → fraction).
    pub browsers: Vec<(String, BTreeMap<String, f64>)>,
    /// Per outlet: (OS label → fraction).
    pub oses: Vec<(String, BTreeMap<String, f64>)>,
}

fn fraction_map<'a>(items: impl Iterator<Item = &'a str>) -> BTreeMap<String, f64> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut n = 0usize;
    for i in items {
        *counts.entry(i.to_string()).or_insert(0) += 1;
        n += 1;
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, if n == 0 { 0.0 } else { c as f64 / n as f64 }))
        .collect()
}

/// Build Figure 5 (5a browsers, 5b operating systems).
pub fn fig5(ds: &Dataset) -> Fig5 {
    let mut browsers = Vec::new();
    let mut oses = Vec::new();
    for outlet in OUTLETS {
        let rows: Vec<&ParsedAccess> = ds
            .accesses_for_outlet(outlet)
            .filter(|a| a.has_location_row)
            .collect();
        browsers.push((
            outlet.to_string(),
            fraction_map(rows.iter().map(|a| a.browser.as_str())),
        ));
        oses.push((
            outlet.to_string(),
            fraction_map(rows.iter().map(|a| a.os.as_str())),
        ));
    }
    Fig5 { browsers, oses }
}

/// One condition of Figure 6 (a median-distance circle).
#[derive(Clone, Debug)]
pub struct Fig6Condition {
    /// Outlet label ("paste" / "forum").
    pub outlet: String,
    /// Which midpoint the distances are measured from ("UK" / "US").
    pub region: String,
    /// Whether the leak advertised the decoy location.
    pub with_location: bool,
    /// Haversine distances (km) of every qualifying access.
    pub distances_km: Vec<f64>,
    /// Median distance — the circle radius the paper draws.
    pub median_km: Option<f64>,
}

fn qualifying_point(a: &ParsedAccess) -> Option<GeoPoint> {
    // Tor exits say nothing about the criminal's location (§4.3.4 removes
    // them); records without a scraped activity row have no location.
    if a.via_tor || !a.has_location_row || a.city == "Unknown" {
        None
    } else {
        Some(GeoPoint {
            lat: a.lat,
            lon: a.lon,
        })
    }
}

/// Build Figure 6: for each outlet × region, the distance vectors of
/// location-advertised accesses and bare-leak accesses.
pub fn fig6(ds: &Dataset) -> Vec<Fig6Condition> {
    let mut out = Vec::new();
    for outlet in ["paste", "forum"] {
        for (region, midpoint) in [("UK", UK_MIDPOINT), ("US", US_MIDPOINT)] {
            for with_location in [true, false] {
                let distances: Vec<f64> = ds
                    .accesses_for_outlet(outlet)
                    .filter_map(|a| {
                        let rec = ds.account_record(a.account)?;
                        let matches = if with_location {
                            rec.advertised_region.as_deref() == Some(region)
                        } else {
                            rec.advertised_region.is_none()
                        };
                        if !matches {
                            return None;
                        }
                        qualifying_point(a).map(|p| haversine_km(p, midpoint))
                    })
                    .collect();
                let median = crate::stats::median(&distances);
                out.push(Fig6Condition {
                    outlet: outlet.to_string(),
                    region: region.to_string(),
                    with_location,
                    distances_km: distances,
                    median_km: median,
                });
            }
        }
    }
    out
}

/// The §4.3.4 statistical tests: for each outlet × region, compare the
/// with-location and no-location distance vectors.
#[derive(Clone, Debug)]
pub struct CvmOutcome {
    /// "paste UK", "paste US", "forum UK", "forum US".
    pub label: String,
    /// Anderson's T statistic.
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
    /// Whether H0 (same distribution) is rejected at the paper's 0.01
    /// threshold.
    pub rejected: bool,
}

/// Run the four Cramér–von Mises tests over Figure 6's vectors.
pub fn cvm_tests(conditions: &[Fig6Condition]) -> Vec<CvmOutcome> {
    let mut out = Vec::new();
    for outlet in ["paste", "forum"] {
        for region in ["UK", "US"] {
            let with = conditions
                .iter()
                .find(|c| c.outlet == outlet && c.region == region && c.with_location);
            let without = conditions
                .iter()
                .find(|c| c.outlet == outlet && c.region == region && !c.with_location);
            if let (Some(w), Some(wo)) = (with, without) {
                if w.distances_km.len() >= 5 && wo.distances_km.len() >= 5 {
                    let r = crate::cvm::cramer_von_mises_2samp(&w.distances_km, &wo.distances_km);
                    out.push(CvmOutcome {
                        label: format!("{outlet} {region}"),
                        statistic: r.statistic,
                        p_value: r.p_value,
                        rejected: r.p_value < 0.01,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_monitor::dataset::AccountRecord;

    fn mk_access(
        account: u32,
        cookie: u64,
        opened: u32,
        sent: u32,
        hijacker: bool,
    ) -> ParsedAccess {
        ParsedAccess {
            account,
            cookie,
            first_seen_secs: 86_400 * (cookie % 40),
            last_seen_secs: 86_400 * (cookie % 40) + 300,
            ip: "50.0.0.1".into(),
            country: Some("US".into()),
            city: "Chicago".into(),
            lat: 41.8781,
            lon: -87.6298,
            browser: "Chrome".into(),
            os: "Windows".into(),
            via_tor: false,
            opened,
            sent,
            drafts: 0,
            starred: 0,
            hijacker,
            has_location_row: true,
        }
    }

    fn mk_account(account: u32, outlet: &str, region: Option<&str>) -> AccountRecord {
        AccountRecord {
            account,
            outlet: outlet.into(),
            advertised_region: region.map(String::from),
            leaked_at_secs: 0,
            hijack_detected_secs: None,
            block_detected_secs: None,
            coverage: None,
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            gaps: Vec::new(),
            accesses: vec![
                mk_access(0, 1, 0, 0, false), // paste curious
                mk_access(0, 2, 3, 0, false), // paste gold digger
                mk_access(1, 3, 0, 40, true), // paste spammer+hijacker
                mk_access(2, 4, 0, 0, false), // forum curious
                mk_access(3, 5, 1, 0, false), // malware gold digger
            ],
            accounts: vec![
                mk_account(0, "paste", Some("US")),
                mk_account(1, "paste", None),
                mk_account(2, "forum", None),
                mk_account(3, "malware", None),
            ],
            opened_texts: vec!["payment account".into()],
        }
    }

    #[test]
    fn fig1_fractions_per_outlet() {
        let f = fig1(&dataset());
        let paste = f.rows.iter().find(|r| r.0 == "paste").unwrap();
        assert_eq!(paste.2, 3);
        // 1 curious of 3, 1 gold digger of 3, 1 hijacker, 1 spammer.
        assert!((paste.1[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((paste.1[1] - 1.0 / 3.0).abs() < 1e-9);
        let malware = f.rows.iter().find(|r| r.0 == "malware").unwrap();
        assert_eq!(malware.2, 1);
        assert_eq!(malware.1[2], 0.0, "no malware hijackers");
    }

    #[test]
    fn fig2_partitions_by_dominant_class() {
        let f = fig2(&dataset());
        let total: usize = f.series.iter().map(|(_, e)| e.len()).sum();
        assert_eq!(total, 5, "every access in exactly one class");
    }

    #[test]
    fn fig3_measures_from_leak_time() {
        let f = fig3(&dataset());
        let paste = &f.series.iter().find(|(o, _)| o == "paste").unwrap().1;
        assert_eq!(paste.len(), 3);
        assert!(paste.samples().iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn fig4_sorted_by_account_then_day() {
        let pts = fig4(&dataset());
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!((w[0].account, w[0].day) <= (w[1].account, w[1].day));
        }
    }

    #[test]
    fn fig5_fractions_sum_to_one() {
        let f = fig5(&dataset());
        for (outlet, m) in &f.browsers {
            let s: f64 = m.values().sum();
            assert!((s - 1.0).abs() < 1e-9, "{outlet} browsers sum {s}");
        }
    }

    #[test]
    fn fig6_produces_eight_conditions() {
        let c = fig6(&dataset());
        assert_eq!(c.len(), 8);
        let us_paste_loc = c
            .iter()
            .find(|x| x.outlet == "paste" && x.region == "US" && x.with_location)
            .unwrap();
        // Chicago → Pontiac ≈ 330 km.
        let m = us_paste_loc.median_km.unwrap();
        assert!((250.0..450.0).contains(&m), "median {m}");
    }

    #[test]
    fn tor_accesses_excluded_from_fig6() {
        let mut ds = dataset();
        for a in &mut ds.accesses {
            a.via_tor = true;
        }
        let c = fig6(&ds);
        assert!(c.iter().all(|x| x.distances_km.is_empty()));
        assert!(cvm_tests(&c).is_empty(), "too few samples for any test");
    }
}
