//! Extended analyses beyond the paper's figures.
//!
//! Three views the paper's discussion motivates but never plots, useful
//! for the defense-design implications of §5 (training anomaly detectors
//! on connection behaviour):
//!
//! * the distribution of accesses per account and outlet (how contended
//!   is a leaked credential?);
//! * the revisit tail per taxonomy class (what fraction of accesses come
//!   back after a day — the behaviour that distinguishes our results
//!   from Bursztein et al.'s one-shot hijackers);
//! * the weekly access timeline (the decay-and-burst rhythm of Figure 4,
//!   aggregated).

use crate::stats::Ecdf;
use crate::taxonomy::classify;
use pwnd_monitor::dataset::Dataset;
use std::collections::BTreeMap;

/// The extended statistics bundle.
#[derive(Clone, Debug)]
pub struct ExtendedStats {
    /// Per outlet: ECDF of accesses-per-account (only accounts with ≥ 1
    /// access contribute).
    pub accesses_per_account: Vec<(String, Ecdf)>,
    /// Per dominant class: fraction of accesses whose observed span
    /// exceeds one day.
    pub revisit_fraction: Vec<(String, f64)>,
    /// Accesses binned by experiment week (by first sighting).
    pub weekly_accesses: Vec<(u64, usize)>,
}

/// Compute the extended statistics.
pub fn extended(ds: &Dataset) -> ExtendedStats {
    // Accesses per account, grouped by outlet.
    let mut per_account: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for a in &ds.accesses {
        if let Some(rec) = ds.account_record(a.account) {
            *per_account
                .entry((rec.outlet.clone(), a.account))
                .or_insert(0) += 1;
        }
    }
    let mut per_outlet: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for ((outlet, _), n) in per_account {
        per_outlet.entry(outlet).or_default().push(n as f64);
    }
    let accesses_per_account = per_outlet
        .into_iter()
        .map(|(outlet, counts)| (outlet, Ecdf::new(counts)))
        .collect();

    // Revisit fraction per class.
    let mut class_counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for a in &ds.accesses {
        let label = classify(a).dominant();
        let e = class_counts.entry(label).or_insert((0, 0));
        e.0 += 1;
        if a.duration_secs() > 86_400 {
            e.1 += 1;
        }
    }
    let revisit_fraction = class_counts
        .into_iter()
        .map(|(label, (n, revisits))| (label.to_string(), revisits as f64 / n.max(1) as f64))
        .collect();

    // Weekly timeline.
    let mut weekly: BTreeMap<u64, usize> = BTreeMap::new();
    for a in &ds.accesses {
        let leak = ds
            .account_record(a.account)
            .map(|r| r.leaked_at_secs)
            .unwrap_or(0);
        let week = a.first_seen_secs.saturating_sub(leak) / (7 * 86_400);
        *weekly.entry(week).or_insert(0) += 1;
    }
    ExtendedStats {
        accesses_per_account,
        revisit_fraction,
        weekly_accesses: weekly.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_monitor::dataset::{AccountRecord, ParsedAccess};

    fn access(account: u32, cookie: u64, first: u64, last: u64, opened: u32) -> ParsedAccess {
        ParsedAccess {
            account,
            cookie,
            first_seen_secs: first,
            last_seen_secs: last,
            ip: "1.1.1.1".into(),
            country: None,
            city: "X".into(),
            lat: 0.0,
            lon: 0.0,
            browser: "Chrome".into(),
            os: "Windows".into(),
            via_tor: false,
            opened,
            sent: 0,
            drafts: 0,
            starred: 0,
            hijacker: false,
            has_location_row: true,
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            gaps: Vec::new(),
            accesses: vec![
                access(0, 1, 0, 10, 0),                  // curious, no revisit
                access(0, 2, 0, 3 * 86_400, 0),          // curious, revisits
                access(1, 3, 8 * 86_400, 8 * 86_400, 2), // gold digger week 1
            ],
            accounts: vec![
                AccountRecord {
                    account: 0,
                    outlet: "paste".into(),
                    advertised_region: None,
                    leaked_at_secs: 0,
                    hijack_detected_secs: None,
                    block_detected_secs: None,
                    coverage: None,
                },
                AccountRecord {
                    account: 1,
                    outlet: "forum".into(),
                    advertised_region: None,
                    leaked_at_secs: 0,
                    hijack_detected_secs: None,
                    block_detected_secs: None,
                    coverage: None,
                },
            ],
            opened_texts: vec![],
        }
    }

    #[test]
    fn accesses_per_account_grouped_by_outlet() {
        let e = extended(&dataset());
        let paste = &e
            .accesses_per_account
            .iter()
            .find(|(o, _)| o == "paste")
            .unwrap()
            .1;
        assert_eq!(paste.len(), 1); // one paste account with accesses
        assert_eq!(paste.median(), Some(2.0)); // it got two accesses
    }

    #[test]
    fn revisit_fraction_counts_multi_day_spans() {
        let e = extended(&dataset());
        let curious = e
            .revisit_fraction
            .iter()
            .find(|(l, _)| l == "Curious")
            .unwrap()
            .1;
        assert!((curious - 0.5).abs() < 1e-9); // 1 of 2 curious accesses
    }

    #[test]
    fn weekly_timeline_bins_by_leak_offset() {
        let e = extended(&dataset());
        assert_eq!(e.weekly_accesses, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let e = extended(&Dataset::default());
        assert!(e.accesses_per_account.is_empty());
        assert!(e.revisit_fraction.is_empty());
        assert!(e.weekly_accesses.is_empty());
    }
}
