//! Defense prototypes from the paper's discussion (§5).
//!
//! > "Anomaly detection systems could be trained adaptively on words
//! > being searched for by the legitimate account owner over a period of
//! > time. A deviation of search behavior would then be flagged as
//! > anomalous […] Similarly, anomaly detection systems could be trained
//! > on the durations of connections during benign usage, and deviations
//! > from those could be flagged as anomalous."
//!
//! Both proposed detectors, implemented and evaluable against the
//! simulation (which — unlike the paper — has provider-side ground truth
//! to score them with):
//!
//! * [`SearchAnomalyDetector`] — trains on the account owner's corpus
//!   vocabulary and scores queries by how unusual their terms are for
//!   this mailbox's usage profile;
//! * [`RangeAnomalyDetector`] — trains on benign session durations (or
//!   any scalar behaviour) and flags values outside the benign quantile
//!   band.

use crate::stats::Ecdf;
use std::collections::BTreeMap;

/// Scores search queries against the owner's vocabulary profile.
///
/// Training counts term usage in the owner's mail. A query's anomaly
/// score is the mean rarity of its terms — `1/(1+count)` per term — so a
/// query made of everyday mailbox vocabulary scores near 0 and a query
/// for terms the owner rarely (or never) uses scores near 1.
#[derive(Clone, Debug, Default)]
pub struct SearchAnomalyDetector {
    counts: BTreeMap<String, u64>,
}

impl SearchAnomalyDetector {
    /// An untrained detector (everything is anomalous).
    pub fn new() -> SearchAnomalyDetector {
        SearchAnomalyDetector::default()
    }

    /// Train on the owner's term stream (tokenized mailbox text).
    pub fn train<I, S>(&mut self, terms: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for t in terms {
            *self.counts.entry(t.as_ref().to_lowercase()).or_insert(0) += 1;
        }
    }

    /// Anomaly score of one query in `[0, 1]`; 1 = never-seen vocabulary.
    /// Empty queries score 0 (nothing to judge).
    pub fn score(&self, query: &str) -> f64 {
        let terms: Vec<&str> = query.split_whitespace().collect();
        if terms.is_empty() {
            return 0.0;
        }
        let total: f64 = terms
            .iter()
            .map(|t| {
                let c = self.counts.get(&t.to_lowercase()).copied().unwrap_or(0);
                1.0 / (1.0 + c as f64)
            })
            .sum();
        total / terms.len() as f64
    }

    /// Whether `query` exceeds the anomaly `threshold`.
    pub fn is_anomalous(&self, query: &str, threshold: f64) -> bool {
        self.score(query) > threshold
    }

    /// Number of distinct trained terms.
    pub fn vocabulary_size(&self) -> usize {
        self.counts.len()
    }
}

/// Flags scalar behaviour (e.g. session duration in minutes) outside the
/// benign quantile band.
#[derive(Clone, Debug)]
pub struct RangeAnomalyDetector {
    lo: f64,
    hi: f64,
}

impl RangeAnomalyDetector {
    /// Train on benign samples, keeping the `[q_lo, q_hi]` quantile band
    /// as "normal". Panics on an empty training set or an inverted band.
    pub fn train(benign: &[f64], q_lo: f64, q_hi: f64) -> RangeAnomalyDetector {
        assert!(!benign.is_empty(), "cannot train on nothing");
        assert!(q_lo < q_hi, "inverted quantile band");
        let e = Ecdf::new(benign.to_vec());
        RangeAnomalyDetector {
            lo: e.quantile(q_lo).expect("non-empty"),
            hi: e.quantile(q_hi).expect("non-empty"),
        }
    }

    /// Train an upper-bound-only detector: values above the `q_hi`
    /// quantile of benign behaviour are anomalous, nothing is "too
    /// small". The right shape for session durations, where a
    /// single-observation access measures as zero.
    pub fn train_upper(benign: &[f64], q_hi: f64) -> RangeAnomalyDetector {
        assert!(!benign.is_empty(), "cannot train on nothing");
        let e = Ecdf::new(benign.to_vec());
        RangeAnomalyDetector {
            lo: f64::NEG_INFINITY,
            hi: e.quantile(q_hi).expect("non-empty"),
        }
    }

    /// The learned benign band.
    pub fn band(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Whether `value` falls outside the benign band.
    pub fn is_anomalous(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }
}

/// Evaluation of a detector over labelled examples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionReport {
    /// Attacker examples flagged (true positives).
    pub detected: usize,
    /// Attacker examples total.
    pub attacker_total: usize,
    /// Benign examples flagged (false positives).
    pub false_positives: usize,
    /// Benign examples total.
    pub benign_total: usize,
}

impl DetectionReport {
    /// True-positive rate.
    pub fn tpr(&self) -> f64 {
        self.detected as f64 / self.attacker_total.max(1) as f64
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        self.false_positives as f64 / self.benign_total.max(1) as f64
    }
}

/// Evaluate the search detector on attacker queries vs benign owner
/// queries at `threshold`.
pub fn evaluate_search_detector(
    detector: &SearchAnomalyDetector,
    attacker_queries: &[String],
    benign_queries: &[String],
    threshold: f64,
) -> DetectionReport {
    DetectionReport {
        detected: attacker_queries
            .iter()
            .filter(|q| detector.is_anomalous(q, threshold))
            .count(),
        attacker_total: attacker_queries.len(),
        false_positives: benign_queries
            .iter()
            .filter(|q| detector.is_anomalous(q, threshold))
            .count(),
        benign_total: benign_queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> SearchAnomalyDetector {
        let mut d = SearchAnomalyDetector::new();
        // The owner's mailbox talks endlessly about energy business.
        let corpus: Vec<&str> = "energy transfer company schedule meeting report energy transfer \
                                 company energy power market trading energy report schedule"
            .split_whitespace()
            .collect();
        d.train(corpus);
        d
    }

    #[test]
    fn owner_vocabulary_scores_low() {
        let d = trained();
        assert!(d.score("energy transfer") < 0.3);
        assert!(!d.is_anomalous("energy report", 0.5));
    }

    #[test]
    fn attacker_vocabulary_scores_high() {
        let d = trained();
        assert!(d.score("bitcoin wallet") > 0.9);
        assert!(d.score("password banking") > 0.9);
        assert!(d.is_anomalous("payment account", 0.5));
    }

    #[test]
    fn score_is_case_insensitive_and_bounded() {
        let d = trained();
        assert_eq!(d.score("ENERGY"), d.score("energy"));
        assert_eq!(d.score(""), 0.0);
        for q in ["energy", "bitcoin", "energy bitcoin", "x y z"] {
            let s = d.score(q);
            assert!((0.0..=1.0).contains(&s), "{q}: {s}");
        }
    }

    #[test]
    fn untrained_flags_everything() {
        let d = SearchAnomalyDetector::new();
        assert_eq!(d.vocabulary_size(), 0);
        assert!(d.is_anomalous("anything at all", 0.5));
    }

    #[test]
    fn range_detector_flags_outliers() {
        let benign: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = RangeAnomalyDetector::train(&benign, 0.05, 0.95);
        let (lo, hi) = d.band();
        assert!(lo >= 1.0 && hi <= 100.0);
        assert!(d.is_anomalous(0.1));
        assert!(d.is_anomalous(500.0));
        assert!(!d.is_anomalous(50.0));
    }

    #[test]
    fn evaluation_report_rates() {
        let d = trained();
        let attacker = vec!["bitcoin".to_string(), "payment account".to_string()];
        let benign = vec!["energy report".to_string(), "meeting schedule".to_string()];
        let r = evaluate_search_detector(&d, &attacker, &benign, 0.5);
        assert_eq!(r.attacker_total, 2);
        assert_eq!(r.benign_total, 2);
        assert!(r.tpr() >= 0.5);
        assert!(r.fpr() <= 0.5);
    }

    #[test]
    fn upper_only_detector_never_flags_small_values() {
        let benign: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = RangeAnomalyDetector::train_upper(&benign, 0.99);
        assert!(!d.is_anomalous(0.0));
        assert!(!d.is_anomalous(50.0));
        assert!(d.is_anomalous(10_000.0));
    }

    #[test]
    #[should_panic(expected = "cannot train on nothing")]
    fn range_detector_rejects_empty_training() {
        RangeAnomalyDetector::train(&[], 0.05, 0.95);
    }
}
