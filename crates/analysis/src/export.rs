//! CSV export of every figure's data series.
//!
//! The report renderer prints summaries; this module emits the full data
//! behind each figure as CSV, one file per figure, so the paper's plots
//! can be regenerated with any plotting tool
//! (`cargo run --example export_figures`).

use crate::report::FullAnalysis;
use std::fmt::Write as _;

/// One exportable CSV file.
#[derive(Clone, Debug, PartialEq)]
pub struct CsvFile {
    /// Suggested file name, e.g. `fig3_first_access.csv`.
    pub name: String,
    /// The CSV contents, header row included.
    pub contents: String,
}

fn push_csv_row(out: &mut String, fields: &[String]) {
    let escaped: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.contains(',') || f.contains('"') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.clone()
            }
        })
        .collect();
    let _ = writeln!(out, "{}", escaped.join(","));
}

/// Export every figure of `analysis` as CSV files.
pub fn figures_to_csv(analysis: &FullAnalysis) -> Vec<CsvFile> {
    let mut files = Vec::new();

    // Figure 1: stacked fractions.
    let mut f1 = String::new();
    push_csv_row(
        &mut f1,
        &[
            "outlet",
            "curious",
            "gold_digger",
            "hijacker",
            "spammer",
            "n",
        ]
        .map(String::from),
    );
    for (outlet, fr, n) in &analysis.fig1.rows {
        push_csv_row(
            &mut f1,
            &[
                outlet.clone(),
                format!("{:.4}", fr[0]),
                format!("{:.4}", fr[1]),
                format!("{:.4}", fr[2]),
                format!("{:.4}", fr[3]),
                n.to_string(),
            ],
        );
    }
    files.push(CsvFile {
        name: "fig1_taxonomy.csv".into(),
        contents: f1,
    });

    // Figures 2 and 3: ECDF point series.
    for (name, series) in [
        ("fig2_duration_cdf.csv", &analysis.fig2.series),
        ("fig3_first_access_cdf.csv", &analysis.fig3.series),
    ] {
        let mut out = String::new();
        push_csv_row(&mut out, &["series", "x", "f"].map(String::from));
        for (label, e) in series {
            for (x, f) in e.points() {
                push_csv_row(
                    &mut out,
                    &[label.clone(), format!("{x:.4}"), format!("{f:.6}")],
                );
            }
        }
        files.push(CsvFile {
            name: name.into(),
            contents: out,
        });
    }

    // Figure 4: scatter points.
    let mut f4 = String::new();
    push_csv_row(&mut f4, &["account", "outlet", "day"].map(String::from));
    for p in &analysis.fig4 {
        push_csv_row(
            &mut f4,
            &[
                p.account.to_string(),
                p.outlet.clone(),
                format!("{:.3}", p.day),
            ],
        );
    }
    files.push(CsvFile {
        name: "fig4_timeline.csv".into(),
        contents: f4,
    });

    // Figure 5: two long-format tables.
    for (name, rows) in [
        ("fig5a_browsers.csv", &analysis.fig5.browsers),
        ("fig5b_oses.csv", &analysis.fig5.oses),
    ] {
        let mut out = String::new();
        push_csv_row(&mut out, &["outlet", "label", "fraction"].map(String::from));
        for (outlet, m) in rows {
            for (label, frac) in m {
                push_csv_row(
                    &mut out,
                    &[outlet.clone(), label.clone(), format!("{frac:.4}")],
                );
            }
        }
        files.push(CsvFile {
            name: name.into(),
            contents: out,
        });
    }

    // Figure 6: raw distance vectors (the CvM inputs).
    let mut f6 = String::new();
    push_csv_row(
        &mut f6,
        &["outlet", "region", "with_location", "distance_km"].map(String::from),
    );
    for c in &analysis.fig6 {
        for d in &c.distances_km {
            push_csv_row(
                &mut f6,
                &[
                    c.outlet.clone(),
                    c.region.clone(),
                    c.with_location.to_string(),
                    format!("{d:.1}"),
                ],
            );
        }
    }
    files.push(CsvFile {
        name: "fig6_distances.csv".into(),
        contents: f6,
    });

    // Table 2: the full TF-IDF table.
    let mut t2 = String::new();
    push_csv_row(
        &mut t2,
        &["term", "tfidf_r", "tfidf_a", "diff"].map(String::from),
    );
    for s in analysis.tfidf.scores() {
        push_csv_row(
            &mut t2,
            &[
                s.term.clone(),
                format!("{:.6}", s.tfidf_r),
                format!("{:.6}", s.tfidf_a),
                format!("{:.6}", s.diff()),
            ],
        );
    }
    files.push(CsvFile {
        name: "table2_tfidf.csv".into(),
        contents: t2,
    });

    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_monitor::dataset::Dataset;

    #[test]
    fn export_covers_every_figure() {
        let analysis = FullAnalysis::compute(&Dataset::default(), "", &[], None);
        let files = figures_to_csv(&analysis);
        let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        for expected in [
            "fig1_taxonomy.csv",
            "fig2_duration_cdf.csv",
            "fig3_first_access_cdf.csv",
            "fig4_timeline.csv",
            "fig5a_browsers.csv",
            "fig5b_oses.csv",
            "fig6_distances.csv",
            "table2_tfidf.csv",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Every file has a header line.
        for f in &files {
            assert!(f.contents.lines().count() >= 1, "{} empty", f.name);
            assert!(f.contents.lines().next().unwrap().contains(','));
        }
    }

    #[test]
    fn csv_escaping() {
        let mut out = String::new();
        push_csv_row(
            &mut out,
            &["plain".into(), "with,comma".into(), "with\"quote".into()],
        );
        assert_eq!(out, "plain,\"with,comma\",\"with\"\"quote\"\n");
    }
}
