#![warn(missing_docs)]

//! # pwnd-analysis — the paper's §4 analysis pipeline
//!
//! Everything the evaluation section computes, implemented over the
//! *censored* monitoring dataset (never over simulator ground truth):
//!
//! * [`stats`] — empirical CDFs, medians, quantiles;
//! * [`taxonomy`] — the §4.2 access taxonomy (curious / gold digger /
//!   spammer / hijacker), inferred from observable actions only;
//! * [`cvm`] — the two-sample Cramér–von Mises test (Anderson's
//!   version), with both the asymptotic p-value (Bessel-function series,
//!   matching `scipy.stats.cramervonmises_2samp`) and a seeded
//!   permutation p-value;
//! * [`tfidf`] — the §4.3.5 keyword-inference method: smoothed,
//!   L2-normalized TF-IDF over the two-document corpus {all emails,
//!   opened emails}, whose difference vector recovers what attackers
//!   searched for;
//! * [`figures`] — data series for Figures 1–6;
//! * [`tables`] — the §4.1 overview, Table 1, origin statistics
//!   (Tor / blacklist / country counts) and Table 2;
//! * [`stream`] — incremental builders for the same statistics, fed
//!   record-by-record from an on-disk fleet store;
//! * [`sophistication`] — the §4.5 per-outlet stealth scores;
//! * [`report`] — ASCII rendering of the full evaluation.

pub mod cvm;
pub mod defense;
pub mod export;
pub mod extended;
pub mod figures;
pub mod report;
pub mod sophistication;
pub mod stats;
pub mod stream;
pub mod tables;
pub mod taxonomy;
pub mod tfidf;

pub use cvm::{cramer_von_mises_2samp, permutation_p_value, CvmResult};
pub use stats::Ecdf;
pub use taxonomy::{classify, AccessClasses};
pub use tfidf::TfidfTable;
