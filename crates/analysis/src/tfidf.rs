//! TF-IDF keyword inference (§4.3.5, Table 2).
//!
//! The paper ranks terms in a two-document corpus — `d_A` (all emails in
//! the honey accounts) and `d_R` (the emails attackers opened) — and
//! takes `TFIDF_R − TFIDF_A` as the signal of what attackers searched
//! for. With the textbook `idf = log(N/df)` every term present in both
//! documents would score exactly zero, yet the paper's Table 2 shows
//! non-zero weights for shared terms — so, like the standard tooling the
//! authors evidently used, we use the smoothed variant with L2-normalized
//! vectors:
//!
//! ```text
//! tf(t, d)  = raw count of t in d
//! idf(t)    = ln((1 + N) / (1 + df(t))) + 1        (N = 2 documents)
//! tfidf     = tf · idf, then each document vector L2-normalized
//! ```
//!
//! Values land in [0, 1] and shared terms stay comparable across the two
//! documents, exactly matching the paper's table semantics.

use pwnd_corpus::tokenize::Tokenizer;
use std::collections::BTreeMap;

/// One row of the Table 2 data.
#[derive(Clone, Debug, PartialEq)]
pub struct TermScore {
    /// The term.
    pub term: String,
    /// Weight in the opened-emails document (`TFIDF_R`).
    pub tfidf_r: f64,
    /// Weight in the all-emails document (`TFIDF_A`).
    pub tfidf_a: f64,
}

impl TermScore {
    /// `TFIDF_R − TFIDF_A` — the "searched-for" signal.
    pub fn diff(&self) -> f64 {
        self.tfidf_r - self.tfidf_a
    }
}

/// The full term table over the two-document corpus.
#[derive(Clone, Debug)]
pub struct TfidfTable {
    scores: Vec<TermScore>,
}

fn counts(tokens: &[String]) -> BTreeMap<&str, f64> {
    let mut m: BTreeMap<&str, f64> = BTreeMap::new();
    for t in tokens {
        *m.entry(t.as_str()).or_insert(0.0) += 1.0;
    }
    m
}

impl TfidfTable {
    /// Build from the raw text of all emails (`d_A`) and the opened
    /// emails (`d_R`), running both through the same tokenizer.
    pub fn build(all_emails_text: &str, opened_text: &str, tokenizer: &Tokenizer) -> TfidfTable {
        let toks_a = tokenizer.tokenize(all_emails_text);
        let toks_r = tokenizer.tokenize(opened_text);
        Self::from_tokens(&toks_a, &toks_r)
    }

    /// Build from pre-tokenized documents.
    pub fn from_tokens(tokens_a: &[String], tokens_r: &[String]) -> TfidfTable {
        let ca = counts(tokens_a);
        let cr = counts(tokens_r);
        let mut vocab: Vec<&str> = ca.keys().chain(cr.keys()).copied().collect();
        vocab.sort_unstable();
        vocab.dedup();

        let n_docs = 2.0f64;
        let mut rows: Vec<(String, f64, f64)> = Vec::with_capacity(vocab.len());
        for term in vocab {
            let tfa = ca.get(term).copied().unwrap_or(0.0);
            let tfr = cr.get(term).copied().unwrap_or(0.0);
            let df = f64::from(u8::from(tfa > 0.0)) + f64::from(u8::from(tfr > 0.0));
            let idf = ((1.0 + n_docs) / (1.0 + df)).ln() + 1.0;
            rows.push((term.to_string(), tfr * idf, tfa * idf));
        }
        // L2-normalize each document vector.
        let norm_r = rows.iter().map(|r| r.1 * r.1).sum::<f64>().sqrt();
        let norm_a = rows.iter().map(|r| r.2 * r.2).sum::<f64>().sqrt();
        let scores = rows
            .into_iter()
            .map(|(term, r, a)| TermScore {
                term,
                tfidf_r: if norm_r > 0.0 { r / norm_r } else { 0.0 },
                tfidf_a: if norm_a > 0.0 { a / norm_a } else { 0.0 },
            })
            .collect();
        TfidfTable { scores }
    }

    /// All rows.
    pub fn scores(&self) -> &[TermScore] {
        &self.scores
    }

    /// Top `n` terms by `TFIDF_R − TFIDF_A` — the inferred searched-for
    /// words (Table 2, left).
    pub fn top_searched(&self, n: usize) -> Vec<&TermScore> {
        let mut v: Vec<&TermScore> = self.scores.iter().collect();
        v.sort_by(|a, b| b.diff().partial_cmp(&a.diff()).expect("finite"));
        v.truncate(n);
        v
    }

    /// Top `n` terms by `TFIDF_A` — the most important corpus words
    /// (Table 2, right).
    pub fn top_corpus(&self, n: usize) -> Vec<&TermScore> {
        let mut v: Vec<&TermScore> = self.scores.iter().collect();
        v.sort_by(|a, b| b.tfidf_a.partial_cmp(&a.tfidf_a).expect("finite"));
        v.truncate(n);
        v
    }

    /// Look up one term.
    pub fn get(&self, term: &str) -> Option<&TermScore> {
        self.scores.iter().find(|s| s.term == term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TfidfTable {
        // d_A: business corpus dominated by "energy"/"transfer".
        let all = "energy transfer company energy transfer schedule energy \
                   power company please would transfer information about \
                   payment account energy power transfer company original";
        // d_R: opened emails dominated by sensitive + bitcoin terms.
        let opened = "payment account bitcoin bitcoin family seller \
                      localbitcoins payment account bitcoins below listed \
                      energy transfer";
        TfidfTable::build(all, opened, &Tokenizer::new())
    }

    #[test]
    fn searched_terms_rank_by_difference() {
        let t = table();
        let top: Vec<&str> = t.top_searched(10).iter().map(|s| s.term.as_str()).collect();
        assert!(top.contains(&"bitcoin"), "{top:?}");
        assert!(
            top.contains(&"payment") || top.contains(&"account"),
            "{top:?}"
        );
        // Corpus-dominant terms must NOT rank as searched.
        assert!(!top.contains(&"energy"));
        assert!(!top.contains(&"transfer"));
    }

    #[test]
    fn corpus_terms_rank_by_tfidf_a() {
        let t = table();
        let top: Vec<&str> = t.top_corpus(3).iter().map(|s| s.term.as_str()).collect();
        assert!(top.contains(&"energy"), "{top:?}");
        assert!(top.contains(&"transfer"), "{top:?}");
    }

    #[test]
    fn shared_terms_have_nonzero_weights_in_both() {
        // The smoothed idf keeps shared terms visible (paper Table 2
        // semantics: "transfer" has weight in both columns).
        let t = table();
        let s = t.get("energy").unwrap();
        assert!(s.tfidf_a > 0.0);
        assert!(s.tfidf_r > 0.0);
    }

    #[test]
    fn corpus_only_terms_have_negative_diff() {
        let t = table();
        let s = t.get("company").unwrap();
        assert_eq!(s.tfidf_r, 0.0);
        assert!(s.diff() < 0.0);
    }

    #[test]
    fn weights_are_normalized() {
        let t = table();
        let sum_r: f64 = t.scores().iter().map(|s| s.tfidf_r * s.tfidf_r).sum();
        let sum_a: f64 = t.scores().iter().map(|s| s.tfidf_a * s.tfidf_a).sum();
        assert!((sum_r - 1.0).abs() < 1e-9);
        assert!((sum_a - 1.0).abs() < 1e-9);
        for s in t.scores() {
            assert!((0.0..=1.0).contains(&s.tfidf_r));
            assert!((0.0..=1.0).contains(&s.tfidf_a));
        }
    }

    #[test]
    fn empty_documents_are_safe() {
        let t = TfidfTable::build("", "", &Tokenizer::new());
        assert!(t.scores().is_empty());
        assert!(t.top_searched(10).is_empty());
    }

    #[test]
    fn preprocessing_is_applied() {
        // Short words and header words never appear as terms.
        let t = TfidfTable::build(
            "the charset energy",
            "the delivered payment",
            &Tokenizer::new(),
        );
        assert!(t.get("charset").is_none());
        assert!(t.get("delivered").is_none());
        assert!(t.get("the").is_none());
        assert!(t.get("energy").is_some());
    }
}
