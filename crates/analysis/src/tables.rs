//! The §4.1 overview numbers, Table 1, and the origin statistics.

use pwnd_monitor::dataset::Dataset;
use pwnd_net::dnsbl::Blacklist;
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// The §4.1 headline statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct Overview {
    /// Unique accesses observed (paper: 326).
    pub total_accesses: usize,
    /// Emails opened (paper: 147).
    pub emails_opened: u64,
    /// Emails sent (paper: 845).
    pub emails_sent: u64,
    /// Unique draft emails composed (paper: 12).
    pub drafts_created: u64,
    /// Accounts that received at least one access (paper: 90).
    pub accounts_accessed: usize,
    /// Per-outlet accessed-account counts (paper: 41 paste / 30 forum /
    /// 19 malware).
    pub accessed_by_outlet: BTreeMap<String, usize>,
    /// Per-outlet unique-access counts (paper: 144 / 125 / 57).
    pub accesses_by_outlet: BTreeMap<String, usize>,
    /// Accounts blocked by the provider (paper: 42).
    pub accounts_blocked: usize,
    /// Accounts hijacked — password changed (paper: 36).
    pub accounts_hijacked: usize,
}

/// Compute the overview from the dataset — a thin wrapper over the
/// streaming [`OverviewBuilder`](crate::stream::OverviewBuilder), so
/// the in-memory and store-streaming paths share one implementation.
pub fn overview(ds: &Dataset) -> Overview {
    let mut b = crate::stream::OverviewBuilder::new();
    for rec in &ds.accounts {
        b.add_account(rec);
    }
    for a in &ds.accesses {
        b.add_access(a);
    }
    b.finish()
}

/// One Table 1 row.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// Group number (1-based, Table 1 order).
    pub group: usize,
    /// Accounts in the group.
    pub accounts: usize,
    /// Outlet description, e.g. "paste websites (with location)".
    pub outlet: String,
}

/// Reconstruct Table 1 from the dataset's account records.
pub fn table1(ds: &Dataset) -> Vec<Table1Row> {
    // Group key: (outlet, with_location). Order mirrors the paper.
    let order: [(&str, bool); 5] = [
        ("paste", false),
        ("paste", true),
        ("forum", false),
        ("forum", true),
        ("malware", false),
    ];
    order
        .iter()
        .enumerate()
        .map(|(i, &(outlet, with_loc))| {
            let n = ds
                .accounts
                .iter()
                .filter(|r| r.outlet == outlet && r.advertised_region.is_some() == with_loc)
                .count();
            let site = match outlet {
                "paste" => "paste websites",
                "forum" => "forums",
                _ => "malware",
            };
            let loc = if with_loc {
                "with location"
            } else {
                "no location"
            };
            Table1Row {
                group: i + 1,
                accounts: n,
                outlet: format!("{site} ({loc})"),
            }
        })
        .collect()
}

/// §4.3.4 origin statistics: Tor usage, blacklist hits, country spread.
#[derive(Clone, Debug, PartialEq)]
pub struct OriginStats {
    /// Per outlet: (total accesses, accesses via Tor). Paper: paste
    /// 28/144, forum 48/125, malware 56/57; overall 132/326.
    pub tor_by_outlet: BTreeMap<String, (usize, usize)>,
    /// Total accesses via Tor.
    pub tor_total: usize,
    /// Distinct countries among non-Tor located accesses (paper: 29).
    pub countries: usize,
    /// Distinct origin IPs found in the blacklist (paper: 20 in
    /// Spamhaus).
    pub blacklisted_ips: usize,
}

/// Compute origin statistics; `blacklist` is the post-hoc Spamhaus check.
pub fn origin_stats(ds: &Dataset, blacklist: Option<&Blacklist>) -> OriginStats {
    let mut tor_by_outlet: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut countries: HashSet<String> = HashSet::new();
    let mut blacklisted: HashSet<Ipv4Addr> = HashSet::new();
    for a in &ds.accesses {
        let outlet = ds
            .account_record(a.account)
            .map(|r| r.outlet.clone())
            .unwrap_or_else(|| "unknown".into());
        let e = tor_by_outlet.entry(outlet).or_insert((0, 0));
        e.0 += 1;
        if a.via_tor {
            e.1 += 1;
        } else if let Some(c) = &a.country {
            countries.insert(c.clone());
        }
        if let (Some(bl), Ok(ip)) = (blacklist, a.ip.parse::<Ipv4Addr>()) {
            if bl.is_ever_listed(ip) {
                blacklisted.insert(ip);
            }
        }
    }
    OriginStats {
        tor_total: tor_by_outlet.values().map(|&(_, t)| t).sum(),
        tor_by_outlet,
        countries: countries.len(),
        blacklisted_ips: blacklisted.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_monitor::dataset::{AccountRecord, ParsedAccess};
    use pwnd_sim::SimTime;

    fn access(account: u32, cookie: u64, tor: bool, country: &str, ip: &str) -> ParsedAccess {
        ParsedAccess {
            account,
            cookie,
            first_seen_secs: 100,
            last_seen_secs: 200,
            ip: ip.into(),
            country: Some(country.into()),
            city: "X".into(),
            lat: 0.0,
            lon: 0.0,
            browser: "Chrome".into(),
            os: "Windows".into(),
            via_tor: tor,
            opened: 2,
            sent: 1,
            drafts: 1,
            starred: 0,
            hijacker: false,
            has_location_row: true,
        }
    }

    fn account(
        idx: u32,
        outlet: &str,
        region: Option<&str>,
        hijacked: bool,
        blocked: bool,
    ) -> AccountRecord {
        AccountRecord {
            account: idx,
            outlet: outlet.into(),
            advertised_region: region.map(String::from),
            leaked_at_secs: 0,
            hijack_detected_secs: hijacked.then_some(500),
            block_detected_secs: blocked.then_some(600),
            coverage: None,
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            gaps: Vec::new(),
            accesses: vec![
                access(0, 1, false, "US", "50.0.0.1"),
                access(0, 2, true, "DE", "171.0.0.1"),
                access(1, 3, false, "BR", "60.0.0.1"),
            ],
            accounts: vec![
                account(0, "paste", Some("UK"), true, true),
                account(1, "forum", None, false, false),
                account(2, "malware", None, false, false),
            ],
            opened_texts: vec![],
        }
    }

    #[test]
    fn overview_counts() {
        let o = overview(&dataset());
        assert_eq!(o.total_accesses, 3);
        assert_eq!(o.emails_opened, 6);
        assert_eq!(o.emails_sent, 3);
        assert_eq!(o.drafts_created, 3);
        assert_eq!(o.accounts_accessed, 2);
        assert_eq!(o.accessed_by_outlet["paste"], 1);
        assert_eq!(o.accesses_by_outlet["paste"], 2);
        assert_eq!(o.accounts_blocked, 1);
        assert_eq!(o.accounts_hijacked, 1);
    }

    #[test]
    fn table1_reconstructs_groups() {
        let t = table1(&dataset());
        assert_eq!(t.len(), 5);
        assert_eq!(t[1].accounts, 1); // paste with location
        assert_eq!(t[2].accounts, 1); // forum no location
        assert_eq!(t[4].accounts, 1); // malware
        assert_eq!(t[0].accounts, 0); // paste no location
        assert!(t[1].outlet.contains("with location"));
    }

    #[test]
    fn origin_stats_counts_tor_and_countries() {
        let mut bl = Blacklist::new();
        bl.list(
            "50.0.0.1".parse().unwrap(),
            SimTime::ZERO,
            pwnd_net::dnsbl::ListingReason::InfectedHost,
        );
        let s = origin_stats(&dataset(), Some(&bl));
        assert_eq!(s.tor_total, 1);
        assert_eq!(s.tor_by_outlet["paste"], (2, 1));
        assert_eq!(s.countries, 2); // US + BR; DE is behind Tor
        assert_eq!(s.blacklisted_ips, 1);
    }

    #[test]
    fn origin_stats_without_blacklist() {
        let s = origin_stats(&dataset(), None);
        assert_eq!(s.blacklisted_ips, 0);
    }
}
