//! §4.5: per-outlet attacker sophistication.
//!
//! The paper identifies three stealth behaviours: configuration hiding
//! (unfingerprintable browsers), origin anonymization (Tor) / location
//! filter evasion, and non-destructiveness (no hijacking, no spamming).
//! Malware-outlet attackers score highest on all three; forum attackers
//! lowest.

use crate::taxonomy::classify;
use pwnd_monitor::dataset::Dataset;

/// Stealth metrics for one outlet population.
#[derive(Clone, Debug, PartialEq)]
pub struct SophisticationRow {
    /// Outlet label.
    pub outlet: String,
    /// Fraction of accesses with an unidentifiable browser.
    pub config_hidden: f64,
    /// Fraction of accesses via Tor.
    pub tor: f64,
    /// Fraction of accesses that performed no destructive action
    /// (neither hijack nor spam).
    pub non_destructive: f64,
    /// Combined stealth score: the mean of the three components.
    pub score: f64,
}

/// Compute the sophistication table.
pub fn sophistication(ds: &Dataset) -> Vec<SophisticationRow> {
    crate::figures::OUTLETS
        .iter()
        .map(|&outlet| {
            let accesses: Vec<_> = ds.accesses_for_outlet(outlet).collect();
            let n = accesses.len().max(1) as f64;
            let hidden = accesses.iter().filter(|a| a.browser == "Unknown").count() as f64 / n;
            let tor = accesses.iter().filter(|a| a.via_tor).count() as f64 / n;
            let gentle = accesses
                .iter()
                .filter(|a| {
                    let c = classify(a);
                    !c.hijacker && !c.spammer
                })
                .count() as f64
                / n;
            SophisticationRow {
                outlet: outlet.to_string(),
                config_hidden: hidden,
                tor,
                non_destructive: gentle,
                score: (hidden + tor + gentle) / 3.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnd_monitor::dataset::{AccountRecord, ParsedAccess};

    fn access(account: u32, cookie: u64, tor: bool, browser: &str, sent: u32) -> ParsedAccess {
        ParsedAccess {
            account,
            cookie,
            first_seen_secs: 0,
            last_seen_secs: 1,
            ip: "1.1.1.1".into(),
            country: None,
            city: "X".into(),
            lat: 0.0,
            lon: 0.0,
            browser: browser.into(),
            os: "Windows".into(),
            via_tor: tor,
            opened: 0,
            sent,
            drafts: 0,
            starred: 0,
            hijacker: false,
            has_location_row: true,
        }
    }

    #[test]
    fn malware_scores_highest() {
        let ds = Dataset {
            gaps: Vec::new(),
            accesses: vec![
                access(0, 1, true, "Unknown", 0),
                access(0, 2, true, "Unknown", 0),
                access(1, 3, false, "Chrome", 100),
                access(1, 4, false, "Firefox", 0),
            ],
            accounts: vec![
                AccountRecord {
                    account: 0,
                    outlet: "malware".into(),
                    advertised_region: None,
                    leaked_at_secs: 0,
                    hijack_detected_secs: None,
                    block_detected_secs: None,
                    coverage: None,
                },
                AccountRecord {
                    account: 1,
                    outlet: "forum".into(),
                    advertised_region: None,
                    leaked_at_secs: 0,
                    hijack_detected_secs: None,
                    block_detected_secs: None,
                    coverage: None,
                },
            ],
            opened_texts: vec![],
        };
        let rows = sophistication(&ds);
        let malware = rows.iter().find(|r| r.outlet == "malware").unwrap();
        let forum = rows.iter().find(|r| r.outlet == "forum").unwrap();
        assert_eq!(malware.config_hidden, 1.0);
        assert_eq!(malware.tor, 1.0);
        assert_eq!(malware.non_destructive, 1.0);
        assert!(malware.score > forum.score);
        assert_eq!(forum.non_destructive, 0.5);
    }

    #[test]
    fn empty_outlet_scores_zero_without_panicking() {
        let ds = Dataset::default();
        let rows = sophistication(&ds);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.score == 0.0));
    }
}
