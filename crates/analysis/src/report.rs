//! ASCII rendering of the full evaluation.
//!
//! [`FullAnalysis`] bundles every table and figure; `render()` prints the
//! whole §4 evaluation in plain text, with the paper's reference values
//! alongside the measured ones where a direct comparison exists.

use crate::extended::{extended, ExtendedStats};
use crate::figures::{self, CvmOutcome, Fig1, Fig2, Fig3, Fig4Point, Fig5, Fig6Condition};
use crate::sophistication::{sophistication, SophisticationRow};
use crate::tables::{origin_stats, overview, table1, OriginStats, Overview, Table1Row};
use crate::tfidf::TfidfTable;
use pwnd_corpus::tokenize::Tokenizer;
use pwnd_monitor::dataset::Dataset;
use pwnd_net::dnsbl::Blacklist;
use std::fmt::Write as _;

/// Everything §4 computes, in one bundle.
#[derive(Clone, Debug)]
pub struct FullAnalysis {
    /// §4.1 headline numbers.
    pub overview: Overview,
    /// Table 1 reconstruction.
    pub table1: Vec<Table1Row>,
    /// Figure 1 data.
    pub fig1: Fig1,
    /// Figure 2 data.
    pub fig2: Fig2,
    /// Figure 3 data.
    pub fig3: Fig3,
    /// Figure 4 data.
    pub fig4: Vec<Fig4Point>,
    /// Figure 5 data.
    pub fig5: Fig5,
    /// Figure 6 conditions.
    pub fig6: Vec<Fig6Condition>,
    /// The four Cramér–von Mises tests.
    pub cvm: Vec<CvmOutcome>,
    /// Origin statistics (Tor, countries, blacklist hits).
    pub origins: OriginStats,
    /// Table 2 TF-IDF data.
    pub tfidf: TfidfTable,
    /// §4.5 sophistication scores.
    pub sophistication: Vec<SophisticationRow>,
    /// Extended views beyond the paper's figures.
    pub extended: ExtendedStats,
    /// Monitoring-coverage summary. `None` for fault-free runs (no gaps
    /// tracked), which keeps their rendered report unchanged.
    pub coverage: Option<CoverageStats>,
}

/// How much of each account's observation window the monitoring pipeline
/// actually saw, aggregated over the run. Only produced when the dataset
/// carries per-account coverage (i.e. the run injected faults).
#[derive(Clone, Debug)]
pub struct CoverageStats {
    /// Mean per-account coverage in `[0, 1]`.
    pub mean: f64,
    /// Worst single account's coverage.
    pub min: f64,
    /// Accounts with coverage strictly below 1.0.
    pub degraded_accounts: usize,
    /// Accounts carrying a coverage figure.
    pub accounts: usize,
    /// Known blind windows recorded in the dataset.
    pub gap_count: usize,
    /// The lowest-coverage accounts, ascending, capped at five.
    pub worst: Vec<(u32, f64)>,
}

fn coverage_stats(ds: &Dataset) -> Option<CoverageStats> {
    let mut covered: Vec<(u32, f64)> = ds
        .accounts
        .iter()
        .filter_map(|a| a.coverage.map(|c| (a.account, c)))
        .collect();
    if covered.is_empty() {
        return None;
    }
    covered.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    let mean = covered.iter().map(|(_, c)| c).sum::<f64>() / covered.len() as f64;
    Some(CoverageStats {
        mean,
        min: covered[0].1,
        degraded_accounts: covered.iter().filter(|(_, c)| *c < 1.0).count(),
        accounts: covered.len(),
        gap_count: ds.gaps.len(),
        worst: covered.into_iter().take(5).collect(),
    })
}

impl FullAnalysis {
    /// Run the entire pipeline. `corpus_text` is the concatenated text of
    /// every seeded email (document `d_A`); `extra_stopwords` carries the
    /// honey handles and monitor markers the paper stripped.
    pub fn compute(
        ds: &Dataset,
        corpus_text: &str,
        extra_stopwords: &[String],
        blacklist: Option<&Blacklist>,
    ) -> FullAnalysis {
        let tokenizer = Tokenizer::new().with_extra_stopwords(extra_stopwords.iter());
        let opened_text = ds.opened_texts.join("\n");
        let fig6 = figures::fig6(ds);
        let cvm = figures::cvm_tests(&fig6);
        FullAnalysis {
            overview: overview(ds),
            table1: table1(ds),
            fig1: figures::fig1(ds),
            fig2: figures::fig2(ds),
            fig3: figures::fig3(ds),
            fig4: figures::fig4(ds),
            fig5: figures::fig5(ds),
            fig6,
            cvm,
            origins: origin_stats(ds, blacklist),
            tfidf: TfidfTable::build(corpus_text, &opened_text, &tokenizer),
            sophistication: sophistication(ds),
            extended: extended(ds),
            coverage: coverage_stats(ds),
        }
    }

    /// Render the full evaluation as plain text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== Overview (paper §4.1) ==");
        let o = &self.overview;
        let _ = writeln!(
            s,
            "unique accesses : {:>5}   (paper: 326)",
            o.total_accesses
        );
        let _ = writeln!(s, "emails opened   : {:>5}   (paper: 147)", o.emails_opened);
        let _ = writeln!(s, "emails sent     : {:>5}   (paper: 845)", o.emails_sent);
        let _ = writeln!(s, "drafts composed : {:>5}   (paper: 12)", o.drafts_created);
        let _ = writeln!(
            s,
            "accounts w/ access: {:>3}  (paper: 90)",
            o.accounts_accessed
        );
        for (outlet, n) in &o.accessed_by_outlet {
            let paper = match outlet.as_str() {
                "paste" => 41,
                "forum" => 30,
                _ => 19,
            };
            let _ = writeln!(
                s,
                "  {outlet:<8} accounts accessed: {n:>3} (paper: {paper})"
            );
        }
        for (outlet, n) in &o.accesses_by_outlet {
            let paper = match outlet.as_str() {
                "paste" => 144,
                "forum" => 125,
                _ => 57,
            };
            let _ = writeln!(s, "  {outlet:<8} accesses: {n:>4} (paper: {paper})");
        }
        let _ = writeln!(
            s,
            "accounts blocked : {:>3}  (paper: 42)",
            o.accounts_blocked
        );
        let _ = writeln!(
            s,
            "accounts hijacked: {:>3}  (paper: 36)",
            o.accounts_hijacked
        );

        let _ = writeln!(s, "\n== Table 1: leak groups ==");
        for r in &self.table1 {
            let _ = writeln!(
                s,
                "group {}  {:>3} accounts  {}",
                r.group, r.accounts, r.outlet
            );
        }

        let _ = writeln!(s, "\n== Figure 1: access types per outlet ==");
        let _ = writeln!(
            s,
            "{:<10} {:>8} {:>12} {:>10} {:>9}  (n)",
            "outlet", "curious", "gold digger", "hijacker", "spammer"
        );
        for (outlet, f, n) in &self.fig1.rows {
            let _ = writeln!(
                s,
                "{outlet:<10} {:>8.2} {:>12.2} {:>10.2} {:>9.2}  ({n})",
                f[0], f[1], f[2], f[3]
            );
        }

        let _ = writeln!(s, "\n== Figure 2: access duration CDF (minutes) ==");
        for (label, e) in &self.fig2.series {
            if e.is_empty() {
                let _ = writeln!(s, "{label:<12} (no accesses)");
                continue;
            }
            let _ = writeln!(
                s,
                "{label:<12} n={:<4} p50={:>8.1}m p90={:>10.1}m max={:>10.1}m",
                e.len(),
                e.median().unwrap_or(0.0),
                e.quantile(0.9).unwrap_or(0.0),
                e.quantile(1.0).unwrap_or(0.0),
            );
        }

        let _ = writeln!(s, "\n== Figure 3: days from leak to access (CDF @ 25d) ==");
        for (outlet, e) in &self.fig3.series {
            let paper = match outlet.as_str() {
                "paste" => 0.80,
                "forum" => 0.60,
                _ => 0.40,
            };
            let _ = writeln!(
                s,
                "{outlet:<8} F(25d) = {:>5.2} (paper ≈ {paper:.2}), n={}",
                e.eval(25.0),
                e.len()
            );
        }

        let _ = writeln!(s, "\n== Figure 4: malware resale bursts ==");
        let malware_days: Vec<f64> = self
            .fig4
            .iter()
            .filter(|p| p.outlet == "malware")
            .map(|p| p.day)
            .collect();
        let in_band =
            |lo: f64, hi: f64| malware_days.iter().filter(|&&d| d >= lo && d < hi).count();
        let _ = writeln!(
            s,
            "malware accesses: <25d {} | 25-60d {} | 95-130d {} | other {}",
            in_band(0.0, 25.0),
            in_band(25.0, 60.0),
            in_band(95.0, 130.0),
            malware_days.len() - in_band(0.0, 25.0) - in_band(25.0, 60.0) - in_band(95.0, 130.0)
        );

        let _ = writeln!(s, "\n== Figure 5a: browsers per outlet ==");
        for (outlet, m) in &self.fig5.browsers {
            let mut parts: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{k} {:.0}%", v * 100.0))
                .collect();
            parts.sort();
            let _ = writeln!(s, "{outlet:<8} {}", parts.join(", "));
        }
        let _ = writeln!(s, "\n== Figure 5b: operating systems per outlet ==");
        for (outlet, m) in &self.fig5.oses {
            let mut parts: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{k} {:.0}%", v * 100.0))
                .collect();
            parts.sort();
            let _ = writeln!(s, "{outlet:<8} {}", parts.join(", "));
        }

        let _ = writeln!(
            s,
            "\n== Figure 6: median distance from advertised midpoints (km) =="
        );
        for c in &self.fig6 {
            let loc = if c.with_location {
                "with location"
            } else {
                "no location "
            };
            let _ = writeln!(
                s,
                "{:<6} {} {}  median {:>7.0} km  (n={})",
                c.outlet,
                c.region,
                loc,
                c.median_km.unwrap_or(f64::NAN),
                c.distances_km.len()
            );
        }

        let _ = writeln!(s, "\n== Cramér–von Mises tests (reject at p < 0.01) ==");
        for t in &self.cvm {
            let paper = match t.label.as_str() {
                "paste UK" => "paper p=0.0017 (reject)",
                "paste US" => "paper p=7e-7 (reject)",
                "forum UK" => "paper p=0.273 (keep)",
                "forum US" => "paper p=0.272 (keep)",
                _ => "",
            };
            let _ = writeln!(
                s,
                "{:<9} T={:>8.4}  p={:<10.6} {}  | {paper}",
                t.label,
                t.statistic,
                t.p_value,
                if t.rejected { "REJECT" } else { "keep  " }
            );
        }

        let _ = writeln!(s, "\n== Origins (§4.3.4) ==");
        for (outlet, (n, tor)) in &self.origins.tor_by_outlet {
            let paper = match outlet.as_str() {
                "paste" => "28/144",
                "forum" => "48/125",
                _ => "56/57",
            };
            let _ = writeln!(s, "{outlet:<8} tor {tor}/{n} (paper {paper})");
        }
        let _ = writeln!(
            s,
            "tor total      : {} (paper 132/326)",
            self.origins.tor_total
        );
        let _ = writeln!(s, "countries      : {} (paper 29)", self.origins.countries);
        let _ = writeln!(
            s,
            "blacklisted IPs: {} (paper 20)",
            self.origins.blacklisted_ips
        );

        let _ = writeln!(s, "\n== Table 2: TF-IDF keyword inference ==");
        let _ = writeln!(
            s,
            "{:<16} {:>9} {:>9} {:>9}",
            "searched word", "TFIDF_R", "TFIDF_A", "diff"
        );
        for t in self.tfidf.top_searched(10) {
            let _ = writeln!(
                s,
                "{:<16} {:>9.4} {:>9.4} {:>9.4}",
                t.term,
                t.tfidf_r,
                t.tfidf_a,
                t.diff()
            );
        }
        let _ = writeln!(
            s,
            "{:<16} {:>9} {:>9} {:>9}",
            "common word", "TFIDF_R", "TFIDF_A", "diff"
        );
        for t in self.tfidf.top_corpus(10) {
            let _ = writeln!(
                s,
                "{:<16} {:>9.4} {:>9.4} {:>9.4}",
                t.term,
                t.tfidf_r,
                t.tfidf_a,
                t.diff()
            );
        }

        let _ = writeln!(s, "\n== Extended: accesses per accessed account ==");
        for (outlet, e) in &self.extended.accesses_per_account {
            if e.is_empty() {
                continue;
            }
            let _ = writeln!(
                s,
                "{outlet:<8} accounts={:<3} median {:.0} max {:.0}",
                e.len(),
                e.median().unwrap_or(0.0),
                e.quantile(1.0).unwrap_or(0.0)
            );
        }
        let _ = writeln!(s, "\n== Extended: multi-day revisit fraction per class ==");
        for (label, frac) in &self.extended.revisit_fraction {
            let _ = writeln!(s, "{label:<12} {:.2}", frac);
        }

        let _ = writeln!(s, "\n== §4.5 sophistication ==");
        let _ = writeln!(
            s,
            "{:<10} {:>11} {:>6} {:>16} {:>7}",
            "outlet", "cfg hidden", "tor", "non-destructive", "score"
        );
        for r in &self.sophistication {
            let _ = writeln!(
                s,
                "{:<10} {:>11.2} {:>6.2} {:>16.2} {:>7.2}",
                r.outlet, r.config_hidden, r.tor, r.non_destructive, r.score
            );
        }

        if let Some(c) = &self.coverage {
            let _ = writeln!(s, "\n== Monitoring coverage (fault-injected run) ==");
            let _ = writeln!(
                s,
                "mean coverage  : {:.4} over {} accounts ({} known gaps)",
                c.mean, c.accounts, c.gap_count
            );
            let _ = writeln!(
                s,
                "degraded       : {} accounts below 1.0 (min {:.4})",
                c.degraded_accounts, c.min
            );
            for (account, cov) in &c.worst {
                if *cov < 1.0 {
                    let _ = writeln!(s, "  account {account:>3}  coverage {cov:.4}");
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_on_empty_dataset() {
        let ds = Dataset::default();
        let a = FullAnalysis::compute(&ds, "", &[], None);
        let text = a.render();
        assert!(text.contains("== Overview"));
        assert!(text.contains("Table 2"));
        assert!(text.contains("sophistication"));
        // No coverage data → the report keeps its legacy shape.
        assert!(a.coverage.is_none());
        assert!(!text.contains("Monitoring coverage"));
    }

    #[test]
    fn coverage_section_appears_when_gaps_were_tracked() {
        use pwnd_monitor::dataset::{AccountRecord, GapRecord};
        let mut ds = Dataset::default();
        for (i, cov) in [(0u32, Some(1.0)), (1, Some(0.75)), (2, Some(0.5))] {
            ds.accounts.push(AccountRecord {
                account: i,
                outlet: "paste".into(),
                advertised_region: None,
                leaked_at_secs: 0,
                hijack_detected_secs: None,
                block_detected_secs: None,
                coverage: cov,
            });
        }
        ds.gaps.push(GapRecord {
            account: 2,
            kind: "scraper".into(),
            from_secs: 100,
            until_secs: 200,
        });
        let a = FullAnalysis::compute(&ds, "", &[], None);
        let c = a.coverage.as_ref().expect("coverage stats present");
        assert_eq!(c.accounts, 3);
        assert_eq!(c.degraded_accounts, 2);
        assert!((c.mean - 0.75).abs() < 1e-9);
        assert!((c.min - 0.5).abs() < 1e-9);
        assert_eq!(c.gap_count, 1);
        assert_eq!(c.worst[0], (2, 0.5));
        let text = a.render();
        assert!(text.contains("Monitoring coverage"));
        assert!(text.contains("account   2  coverage 0.5000"));
    }
}
