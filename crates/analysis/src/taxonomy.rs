//! The §4.2 access taxonomy, inferred from observable actions.
//!
//! The classes are *not exclusive*: an access that sent spam and changed
//! the password is both a spammer and a hijacker. The paper also observes
//! that no access behaved exclusively as a spammer — our classifier
//! reports multi-labels so that invariant can be checked on the data.

use pwnd_monitor::dataset::ParsedAccess;

/// Multi-label classification of one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AccessClasses {
    /// Logged in; may have glanced around; nothing consequential.
    pub curious: bool,
    /// Opened or starred mail — searched the account for value.
    pub gold_digger: bool,
    /// Sent email.
    pub spammer: bool,
    /// Changed the account password.
    pub hijacker: bool,
}

impl AccessClasses {
    /// The class labels in figure order.
    pub const LABELS: [&'static str; 4] = ["Curious", "Gold Digger", "Hijacker", "Spammer"];

    /// Class membership as a figure-ordered array
    /// `[curious, gold_digger, hijacker, spammer]`.
    pub fn as_array(self) -> [bool; 4] {
        [self.curious, self.gold_digger, self.hijacker, self.spammer]
    }

    /// The single *dominant* class, most-destructive-first: spammer >
    /// hijacker > gold digger > curious. Used where the analysis needs a
    /// partition (e.g. the duration CDFs of Figure 2).
    pub fn dominant(self) -> &'static str {
        if self.spammer {
            "Spammer"
        } else if self.hijacker {
            "Hijacker"
        } else if self.gold_digger {
            "Gold Digger"
        } else {
            "Curious"
        }
    }
}

/// Classify one access from its observable record.
pub fn classify(a: &ParsedAccess) -> AccessClasses {
    let gold_digger = a.opened > 0 || a.starred > 0;
    let spammer = a.sent > 0;
    let hijacker = a.hijacker;
    AccessClasses {
        curious: !gold_digger && !spammer && !hijacker,
        gold_digger,
        spammer,
        hijacker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(opened: u32, sent: u32, starred: u32, hijacker: bool) -> ParsedAccess {
        ParsedAccess {
            account: 0,
            cookie: 1,
            first_seen_secs: 0,
            last_seen_secs: 10,
            ip: "1.2.3.4".into(),
            country: None,
            city: "X".into(),
            lat: 0.0,
            lon: 0.0,
            browser: "Chrome".into(),
            os: "Windows".into(),
            via_tor: false,
            opened,
            sent,
            drafts: 0,
            starred,
            hijacker,
            has_location_row: true,
        }
    }

    #[test]
    fn pure_login_is_curious() {
        let c = classify(&access(0, 0, 0, false));
        assert!(c.curious);
        assert_eq!(c.dominant(), "Curious");
    }

    #[test]
    fn opening_mail_is_gold_digging() {
        let c = classify(&access(3, 0, 0, false));
        assert!(c.gold_digger && !c.curious);
        assert_eq!(c.dominant(), "Gold Digger");
    }

    #[test]
    fn starring_is_gold_digging() {
        let c = classify(&access(0, 0, 1, false));
        assert!(c.gold_digger);
    }

    #[test]
    fn multi_label_spammer_hijacker() {
        let c = classify(&access(1, 50, 0, true));
        assert!(c.spammer && c.hijacker && c.gold_digger && !c.curious);
        assert_eq!(c.dominant(), "Spammer");
    }

    #[test]
    fn hijack_dominates_gold_digging() {
        let c = classify(&access(2, 0, 0, true));
        assert_eq!(c.dominant(), "Hijacker");
    }

    #[test]
    fn array_order_matches_labels() {
        let c = classify(&access(0, 1, 0, true));
        let arr = c.as_array();
        assert!(!arr[0]); // curious
        assert!(!arr[1]); // gold digger
        assert!(arr[2]); // hijacker
        assert!(arr[3]); // spammer
    }
}
