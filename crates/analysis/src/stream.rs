//! Streaming (single-pass-per-record-kind) analysis over large stores.
//!
//! The in-memory [`overview`](crate::tables::overview) walks a complete
//! [`Dataset`](pwnd_monitor::dataset::Dataset); at fleet-store scale the
//! dataset never exists in RAM — records arrive one at a time from
//! per-shard JSONL files. [`OverviewBuilder`] accepts exactly those
//! records incrementally and produces the same
//! [`Overview`]: feed every account record
//! first (the outlet lookup accesses need), then every access.
//! `overview()` itself is now a thin wrapper over this builder, so the
//! streaming and in-memory paths cannot drift apart.

use crate::tables::Overview;
use pwnd_monitor::dataset::{AccountRecord, ParsedAccess};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Incremental [`Overview`] accumulator.
///
/// ```
/// use pwnd_analysis::stream::OverviewBuilder;
/// let b = OverviewBuilder::new();
/// let o = b.finish();
/// assert_eq!(o.total_accesses, 0);
/// ```
#[derive(Default)]
pub struct OverviewBuilder {
    /// account id → outlet, from the account records seen so far.
    outlets: HashMap<u32, String>,
    accessed_by_outlet: BTreeMap<String, HashSet<u32>>,
    accesses_by_outlet: BTreeMap<String, usize>,
    total_accesses: usize,
    emails_opened: u64,
    emails_sent: u64,
    drafts_created: u64,
    accessed_accounts: HashSet<u32>,
    accounts_blocked: usize,
    accounts_hijacked: usize,
}

impl OverviewBuilder {
    /// An empty accumulator.
    pub fn new() -> OverviewBuilder {
        OverviewBuilder::default()
    }

    /// Absorb one per-account metadata record. Accounts must be added
    /// before the accesses that reference them, or those accesses fall
    /// out of the per-outlet maps (matching how the in-memory overview
    /// treats an access with no account record).
    pub fn add_account(&mut self, rec: &AccountRecord) {
        self.outlets.insert(rec.account, rec.outlet.clone());
        if rec.block_detected_secs.is_some() {
            self.accounts_blocked += 1;
        }
        if rec.hijack_detected_secs.is_some() {
            self.accounts_hijacked += 1;
        }
    }

    /// Absorb one unique access.
    pub fn add_access(&mut self, a: &ParsedAccess) {
        self.total_accesses += 1;
        self.emails_opened += u64::from(a.opened);
        self.emails_sent += u64::from(a.sent);
        self.drafts_created += u64::from(a.drafts);
        self.accessed_accounts.insert(a.account);
        if let Some(outlet) = self.outlets.get(&a.account) {
            self.accessed_by_outlet
                .entry(outlet.clone())
                .or_default()
                .insert(a.account);
            *self.accesses_by_outlet.entry(outlet.clone()).or_insert(0) += 1;
        }
    }

    /// The finished §4.1 overview.
    pub fn finish(self) -> Overview {
        Overview {
            total_accesses: self.total_accesses,
            emails_opened: self.emails_opened,
            emails_sent: self.emails_sent,
            drafts_created: self.drafts_created,
            accounts_accessed: self.accessed_accounts.len(),
            accessed_by_outlet: self
                .accessed_by_outlet
                .into_iter()
                .map(|(k, v)| (k, v.len()))
                .collect(),
            accesses_by_outlet: self.accesses_by_outlet,
            accounts_blocked: self.accounts_blocked,
            accounts_hijacked: self.accounts_hijacked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::overview;
    use pwnd_monitor::dataset::Dataset;

    fn access(account: u32, opened: u32) -> ParsedAccess {
        ParsedAccess {
            account,
            cookie: 1,
            first_seen_secs: 10,
            last_seen_secs: 20,
            ip: "10.0.0.1".into(),
            country: None,
            city: "Rio".into(),
            lat: 0.0,
            lon: 0.0,
            browser: "Firefox".into(),
            os: "Linux".into(),
            via_tor: false,
            opened,
            sent: 1,
            drafts: 0,
            starred: 0,
            hijacker: false,
            has_location_row: false,
        }
    }

    fn account(id: u32, outlet: &str, blocked: bool) -> AccountRecord {
        AccountRecord {
            account: id,
            outlet: outlet.into(),
            advertised_region: None,
            leaked_at_secs: 0,
            hijack_detected_secs: None,
            block_detected_secs: blocked.then_some(500),
            coverage: None,
        }
    }

    #[test]
    fn streaming_overview_matches_in_memory_overview() {
        let ds = Dataset {
            accesses: vec![access(0, 2), access(1, 0), access(0, 1), access(9, 5)],
            accounts: vec![
                account(0, "paste", true),
                account(1, "forum", false),
                account(2, "malware", false),
            ],
            opened_texts: vec![],
            gaps: vec![],
        };
        let mut b = OverviewBuilder::new();
        for r in &ds.accounts {
            b.add_account(r);
        }
        for a in &ds.accesses {
            b.add_access(a);
        }
        let streamed = b.finish();
        assert_eq!(streamed, overview(&ds));
        // Account 9 has no record: counted in totals, absent per outlet.
        assert_eq!(streamed.total_accesses, 4);
        assert_eq!(streamed.accounts_accessed, 3);
        assert_eq!(streamed.accesses_by_outlet.get("paste"), Some(&2));
        assert_eq!(streamed.accesses_by_outlet.get("malware"), None);
        assert_eq!(streamed.accounts_blocked, 1);
    }
}
