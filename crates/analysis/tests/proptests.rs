//! Property-based tests for the analysis pipeline.

use proptest::prelude::*;
use pwnd_analysis::cvm::{cdf_cvm_inf, cramer_von_mises_2samp, permutation_p_value, statistic};
use pwnd_analysis::stats::Ecdf;
use pwnd_analysis::tfidf::TfidfTable;

fn samples(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1_000.0..1_000.0f64, n)
}

proptest! {
    /// An ECDF is a valid CDF: monotone, bounded by [0,1], 1 at the max.
    #[test]
    fn ecdf_is_a_cdf(mut xs in samples(1..200)) {
        let e = Ecdf::new(xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs[0];
        let hi = xs[xs.len() - 1];
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let mut prev = 0.0;
        let mut x = lo;
        while x <= hi {
            let y = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= prev);
            prev = y;
            x += (hi - lo).max(1.0) / 17.0;
        }
    }

    /// Quantiles are order-consistent and within sample range.
    #[test]
    fn quantiles_ordered(xs in samples(1..150), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let e = Ecdf::new(xs);
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = e.quantile(lo_q).unwrap();
        let b = e.quantile(hi_q).unwrap();
        prop_assert!(a <= b);
        prop_assert!(a >= e.quantile(0.0).unwrap());
        prop_assert!(b <= e.quantile(1.0).unwrap());
    }

    /// The CvM statistic is finite, symmetric, and its p-value in [0,1].
    #[test]
    fn cvm_statistic_sane(x in samples(2..60), y in samples(2..60)) {
        let t = statistic(&x, &y);
        prop_assert!(t.is_finite());
        prop_assert!((t - statistic(&y, &x)).abs() < 1e-9);
        let r = cramer_von_mises_2samp(&x, &y);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    /// Two samples drawn from the *same* continuous distribution are
    /// essentially never rejected at an extreme threshold. (An earlier
    /// version of this test parity-split an arbitrary vector — unsound:
    /// proptest happily constructs vectors whose mass clusters on even
    /// indices, and the test then correctly rejects exchangeability.)
    #[test]
    fn cvm_same_distribution_not_extreme(seed in any::<u64>(), n in 20usize..60, m in 20usize..60) {
        let mut rng = pwnd_sim::Rng::seed_from(seed);
        let d = pwnd_sim::dist::LogNormal::with_median(100.0, 1.0);
        let x: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let y: Vec<f64> = (0..m).map(|_| d.sample(&mut rng)).collect();
        let r = cramer_von_mises_2samp(&x, &y);
        // A p-value this small under H0 happens ~1e-4 of the time; with
        // 256 proptest cases a spurious failure is ~2% per run, so gate
        // at an even more extreme threshold.
        prop_assert!(r.p_value > 1e-5, "p = {}", r.p_value);
    }

    /// The permutation p-value is a valid probability and never zero.
    #[test]
    fn permutation_p_valid(x in samples(5..25), y in samples(5..25), seed in any::<u64>()) {
        let p = permutation_p_value(&x, &y, 200, seed);
        prop_assert!(p > 0.0);
        prop_assert!(p <= 1.0);
    }

    /// The limiting CDF is a CDF.
    #[test]
    fn limiting_cdf_monotone(a in 0.01..2.0f64, b in 0.01..2.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let fa = cdf_cvm_inf(lo);
        let fb = cdf_cvm_inf(hi);
        prop_assert!((0.0..=1.0).contains(&fa));
        prop_assert!((0.0..=1.0).contains(&fb));
        prop_assert!(fb + 1e-9 >= fa);
    }

    /// TF-IDF vectors are L2-normalized and rankings place corpus-only
    /// terms at non-positive difference.
    #[test]
    fn tfidf_normalized(words_a in proptest::collection::vec("[a-z]{5,9}", 1..60),
                        words_r in proptest::collection::vec("[a-z]{5,9}", 1..60)) {
        let table = TfidfTable::from_tokens(&words_a, &words_r);
        let sum_a: f64 = table.scores().iter().map(|s| s.tfidf_a * s.tfidf_a).sum();
        let sum_r: f64 = table.scores().iter().map(|s| s.tfidf_r * s.tfidf_r).sum();
        prop_assert!((sum_a - 1.0).abs() < 1e-9);
        prop_assert!((sum_r - 1.0).abs() < 1e-9);
        for s in table.scores() {
            if s.tfidf_r == 0.0 {
                prop_assert!(s.diff() <= 0.0);
            }
            prop_assert!((0.0..=1.0).contains(&s.tfidf_a));
            prop_assert!((0.0..=1.0).contains(&s.tfidf_r));
        }
    }
}
